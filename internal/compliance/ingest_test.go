package compliance

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/datacase/datacase/internal/erasure"
	"github.com/datacase/datacase/internal/gdprbench"
	"github.com/datacase/datacase/internal/wal"
)

// logicalDigest hashes the decrypted, policy-visible state of a
// deployment: every listed subject's records via SubjectAccess, sorted
// by key. Unlike stateDigest it compares across DISTINCT deployments,
// whose payload ciphers hold different keys and nonces and so never
// agree byte-for-byte on disk.
func logicalDigest(t *testing.T, s *ShardedDB, subjects []string) string {
	t.Helper()
	h := sha256.New()
	for _, sub := range subjects {
		recs, err := s.SubjectAccess(sub)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].Key < recs[b].Key })
		fmt.Fprintf(h, "subject %s (%d records)\n", sub, len(recs))
		for _, r := range recs {
			// CreatedAt is the one field allowed to differ: a batch is a
			// single collection event sharing one clock tick, serial
			// creates tick per record.
			m := r.Meta
			m.CreatedAt = 0
			fmt.Fprintf(h, "%s|%x|%+v\n", r.Key, r.Payload, m)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ingestProfiles runs a subtest per storage backend: batch admission
// and the incremental checkpointer are WAL-protocol features, so both
// engines must satisfy every property here.
func ingestProfiles() map[string]Profile {
	return map[string]Profile{BackendHeap: PBase(), BackendLSM: lsmTestProfile()}
}

func TestCreateBatchBasic(t *testing.T) {
	for backend, p := range ingestProfiles() {
		t.Run(backend, func(t *testing.T) {
			s, err := OpenSharded(p, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			recs := make([]gdprbench.Record, 40)
			for i := range recs {
				recs[i] = recTestRecord(i)
			}
			created, err := s.CreateBatch(recs)
			if err != nil {
				t.Fatalf("CreateBatch: %v", err)
			}
			if created != len(recs) {
				t.Fatalf("created = %d, want %d", created, len(recs))
			}
			if got := s.Len(); got != len(recs) {
				t.Fatalf("Len = %d, want %d", got, len(recs))
			}
			for i := range recs {
				payload, err := s.ReadData(EntityController, PurposeService, recTestKey(i))
				if err != nil {
					t.Fatalf("read %s: %v", recTestKey(i), err)
				}
				if !bytes.Equal(payload, recs[i].Payload) {
					t.Fatalf("read %s: payload %q, want %q", recTestKey(i), payload, recs[i].Payload)
				}
			}

			// A batch containing an already-taken key fails that key's
			// whole shard bin (all-or-nothing per bin) and reports it.
			dup := []gdprbench.Record{recTestRecord(0)}
			if _, err := s.CreateBatch(dup); !errors.Is(err, ErrExists) {
				t.Fatalf("duplicate batch: err = %v, want ErrExists", err)
			}

			// So does a batch that repeats a key within itself.
			twin := recTestRecord(100)
			if _, err := s.CreateBatch([]gdprbench.Record{twin, twin}); !errors.Is(err, ErrExists) {
				t.Fatalf("intra-batch duplicate: err = %v, want ErrExists", err)
			}
			if _, ok := s.ShardIndexOf(twin.Key); ok {
				t.Fatal("failed bin leaked a record into the deployment")
			}
		})
	}
}

// TestCreateBatchMatchesSerialCreates is the batch path's conformance
// check: ingesting a population through CreateBatch must leave the
// deployment state-equal (digest over rows + directory) to creating the
// same records one by one.
func TestCreateBatchMatchesSerialCreates(t *testing.T) {
	for backend, p := range ingestProfiles() {
		t.Run(backend, func(t *testing.T) {
			serial, err := OpenSharded(p, 3)
			if err != nil {
				t.Fatal(err)
			}
			defer serial.Close()
			batched, err := OpenSharded(p, 3)
			if err != nil {
				t.Fatal(err)
			}
			defer batched.Close()

			recs := make([]gdprbench.Record, 30)
			for i := range recs {
				recs[i] = recTestRecord(i)
			}
			for _, rec := range recs {
				if err := serial.Create(rec); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := batched.CreateBatch(recs); err != nil {
				t.Fatal(err)
			}
			if serial.Len() != batched.Len() {
				t.Fatalf("batched Len %d != serial Len %d", batched.Len(), serial.Len())
			}
			subjects := []string{recTestSubject(0), recTestSubject(1), recTestSubject(2),
				recTestSubject(3), recTestSubject(4)}
			if sd, bd := logicalDigest(t, serial, subjects), logicalDigest(t, batched, subjects); sd != bd {
				t.Fatalf("batched logical digest %s != serial digest %s", bd, sd)
			}
		})
	}
}

// TestIncrementalCheckpointCrashMatrix is the delta-checkpoint crash
// matrix: the WCon op script under an IncrementalCheckpoints profile
// whose cadence forces several base images AND several delta frames
// inside the sweep, recovering at every op boundary and requiring
// digest equality with the live reference — the same bar the full-image
// matrix (TestCrashPointMatrix) sets. The run must actually have taken
// deltas, or the matrix proves nothing.
func TestIncrementalCheckpointCrashMatrix(t *testing.T) {
	for backend, p := range ingestProfiles() {
		t.Run(backend, func(t *testing.T) {
			p.CheckpointEveryOps = 5
			p.IncrementalCheckpoints = true
			p.FullCheckpointEvery = 3
			s, err := OpenShardedWorkers(p, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			ops, eraseAt := matrixScript(s, true)
			type capture struct {
				digest string
				images [][]byte
				erased bool
			}
			var caps []capture
			for i, op := range ops {
				if err := op(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				caps = append(caps, capture{digest: stateDigest(t, s), images: s.SegmentImages(), erased: i >= eraseAt})
			}
			c := s.Counters()
			if c.DeltaCheckpoints == 0 {
				t.Fatal("matrix run took no delta checkpoints; cadence too loose to test anything")
			}
			if c.Checkpoints == c.DeltaCheckpoints {
				t.Fatal("matrix run took no full images to chain deltas to")
			}

			for i, cp := range caps {
				r, st, err := RecoverSharded(s.Profile(), cp.images)
				if err != nil {
					t.Fatalf("recover at op %d: %v", i, err)
				}
				if got := stateDigest(t, r); got != cp.digest {
					t.Fatalf("op %d: recovered digest %s != reference %s (stats %v)", i, got, cp.digest, st)
				}
				if cp.erased {
					recs, err := r.SubjectAccess(recTestSubject(2))
					if err != nil {
						t.Fatalf("op %d: subject access: %v", i, err)
					}
					if len(recs) != 0 {
						t.Fatalf("op %d: erased subject has %d readable records after recovery", i, len(recs))
					}
				}
			}
		})
	}
}

// TestIncrementalCheckpointEquivalentToFull pins the two checkpoint
// modes against each other: the same op script run under full-image
// and delta-frame checkpointing must recover to the same state.
func TestIncrementalCheckpointEquivalentToFull(t *testing.T) {
	digests := map[bool]string{}
	for _, incremental := range []bool{false, true} {
		p := PBase()
		p.CheckpointEveryOps = 5
		p.IncrementalCheckpoints = incremental
		p.FullCheckpointEvery = 3
		s, err := OpenShardedWorkers(p, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		ops, _ := matrixScript(s, true)
		for i, op := range ops {
			if err := op(); err != nil {
				t.Fatalf("incr=%v op %d: %v", incremental, i, err)
			}
		}
		r, _, err := RecoverSharded(s.Profile(), s.SegmentImages())
		if err != nil {
			t.Fatalf("incr=%v: recover: %v", incremental, err)
		}
		subjects := []string{recTestSubject(0), recTestSubject(1), recTestSubject(2),
			recTestSubject(3), recTestSubject(4)}
		for i := 20; i < 26; i++ {
			subjects = append(subjects, fmt.Sprintf("late-subject-%d", i))
		}
		digests[incremental] = logicalDigest(t, r, subjects)
	}
	if digests[false] != digests[true] {
		t.Fatalf("base+delta recovery digest %s != full-image recovery digest %s",
			digests[true], digests[false])
	}
}

// TestIncrementalCheckpointTornDeltaTail cuts the segment image at
// every byte offset past the base full image: torn mid-delta frames
// must degrade to the record tail (deltas are redundant summaries —
// every mutation they carry also rides in the tail), recovery must
// land on an op-boundary state, and an erase intent whose subject rows
// live in the BASE image but whose deletions ride a LATER delta frame
// must never resurrect — the boundary-spanning case.
func TestIncrementalCheckpointTornDeltaTail(t *testing.T) {
	p := PBase()
	p.IncrementalCheckpoints = true
	p.FullCheckpointEvery = 100 // deltas only, after the manual base
	s, err := OpenShardedWorkers(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Create(recTestRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	sh := s.Shard(0)
	sh.Checkpoint() // the base full image; truncates the create prefix
	baseMark := int(sh.data.Log().SegmentSize())

	digests := map[string]bool{stateDigest(t, s): true}
	note := func() { digests[stateDigest(t, s)] = true }
	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		note()
	}
	// A few updates, then a delta carrying them.
	for i := 0; i < 6; i++ {
		step(s.UpdateData(EntityController, PurposeService, recTestKey(i),
			[]byte(fmt.Sprintf("torn-update-%d", i))))
	}
	sh.Checkpoint()
	note()
	// Erase a subject whose rows all live in the base image; the
	// deletions ride the next delta frame.
	if _, err := s.EraseSubject(EntitySystem, recTestSubject(2)); err != nil {
		t.Fatal(err)
	}
	note()
	eraseMark := int(sh.data.Log().SegmentSize())
	sh.Checkpoint()
	note()
	// More work after the erase-carrying delta.
	for i := 20; i < 24; i++ {
		step(s.Create(recTestRecord(i)))
	}
	sh.Checkpoint()
	note()

	image := s.SegmentImages()[0]
	eraseKeys := []string{recTestKey(2), recTestKey(7), recTestKey(12), recTestKey(17)}
	for cut := baseMark; cut <= len(image); cut += 5 {
		img := wal.CrashPoint{Bytes: cut, FlipBit: -1}.Apply(image)
		r, _, err := RecoverSharded(s.Profile(), [][]byte{img})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := stateDigest(t, r); !digests[got] {
			t.Fatalf("cut %d: recovered digest %s matches no reference op state", cut, got)
		}
		live := 0
		for _, k := range eraseKeys {
			if _, ok := r.ShardIndexOf(k); ok {
				live++
			}
		}
		if live != 0 && live != len(eraseKeys) {
			t.Fatalf("cut %d: erasure partially resurrected (%d/%d rows live)", cut, live, len(eraseKeys))
		}
		if live != 0 && cut >= eraseMark {
			t.Fatalf("cut %d past the durable erase: %d rows resurrected", cut, live)
		}
		if live == 0 {
			rsh := r.Shard(0)
			for _, k := range eraseKeys {
				if err := erasure.Verify(rsh.data, rsh.data.Log(), []byte(k)); err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
			}
		}
	}
}

// TestIngestBatchRevokeRaceNoStaleAllows is the batched-admission
// analogue of the read-path revocation property: while IngestBatch
// traffic hammers the deployment, consents on pre-existing records are
// revoked; the instant every revocation has returned, a read under the
// revoked purpose must deny — zero stale allows, on both backends. Run
// with -race: the batches, the revocations and the reads overlap by
// design.
func TestIngestBatchRevokeRaceNoStaleAllows(t *testing.T) {
	for _, backend := range backendsUnderTest() {
		t.Run(backend, func(t *testing.T) {
			// The strict (Sieve) profile: per-unit-precise enforcement, the
			// only kind that CAN deny a per-record revocation (PBase's RBAC
			// is role-level imprecise by design).
			p := strictProfile(backend)
			p.IncrementalCheckpoints = true
			p.CheckpointEveryOps = 16
			s, err := OpenSharded(p, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			const victims = 16
			for i := 0; i < victims; i++ {
				if err := s.Create(recTestRecord(i)); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			errc := make(chan error, 2*victims)
			wg.Add(1)
			go func() { // batched ingest of unrelated records
				defer wg.Done()
				for b := 0; b < victims; b++ {
					recs := make([]gdprbench.Record, 8)
					for j := range recs {
						recs[j] = recTestRecord(1000 + b*8 + j)
					}
					if _, err := s.IngestBatch(recs); err != nil {
						errc <- fmt.Errorf("ingest batch %d: %w", b, err)
						return
					}
				}
			}()
			wg.Add(1)
			go func() { // revoke the victims' consent mid-traffic
				defer wg.Done()
				for i := 0; i < victims; i++ {
					if err := s.RevokeConsent(recTestKey(i), PurposeService, EntityController); err != nil {
						errc <- fmt.Errorf("revoke %d: %w", i, err)
						return
					}
					// The barrier property: the moment RevokeConsent
					// returns, no read may be allowed, however many
					// batches are in flight.
					if _, err := s.ReadData(EntityController, PurposeService, recTestKey(i)); !errors.Is(err, ErrDenied) {
						errc <- fmt.Errorf("stale allow on %s right after revoke: err=%v", recTestKey(i), err)
						return
					}
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			for i := 0; i < victims; i++ {
				if _, err := s.ReadData(EntityController, PurposeService, recTestKey(i)); !errors.Is(err, ErrDenied) {
					t.Fatalf("stale allow on %s after quiescence: err=%v", recTestKey(i), err)
				}
			}
		})
	}
}

// TestIngestBatchEraseRaceNoZombies races EraseSubject against
// IngestBatch traffic: after the dust settles, every record the erased
// subject owned beforehand must be physically gone (erasure.Verify),
// and every batch key must be either fully absent or fully readable —
// a batch admitted concurrently with an erasure never leaves
// half-written zombie rows. Run with -race.
func TestIngestBatchEraseRaceNoZombies(t *testing.T) {
	for backend, p := range ingestProfiles() {
		t.Run(backend, func(t *testing.T) {
			p.IncrementalCheckpoints = true
			p.CheckpointEveryOps = 16
			s, err := OpenSharded(p, 4)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// The victim subject's pre-existing records.
			victim := "erase-victim"
			var victimKeys []string
			for i := 0; i < 12; i++ {
				rec := recTestRecord(200 + i)
				rec.Subject = victim
				victimKeys = append(victimKeys, rec.Key)
				if err := s.Create(rec); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			errc := make(chan error, 8)
			var batchKeys []string
			for b := 0; b < 8; b++ {
				recs := make([]gdprbench.Record, 8)
				for j := range recs {
					recs[j] = recTestRecord(2000 + b*8 + j)
					batchKeys = append(batchKeys, recs[j].Key)
				}
				wg.Add(1)
				go func(b int, recs []gdprbench.Record) {
					defer wg.Done()
					if _, err := s.IngestBatch(recs); err != nil {
						errc <- fmt.Errorf("ingest batch %d: %w", b, err)
					}
				}(b, recs)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.EraseSubject(EntitySystem, victim); err != nil {
					errc <- fmt.Errorf("erase: %w", err)
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			for _, k := range victimKeys {
				if _, ok := s.ShardIndexOf(k); ok {
					t.Fatalf("zombie: erased subject's record %s still routed", k)
				}
				if _, err := s.ReadData(EntityController, PurposeService, k); !errors.Is(err, ErrNotFound) {
					t.Fatalf("zombie: erased record %s readable (err=%v)", k, err)
				}
			}
			recs, err := s.SubjectAccess(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 0 {
				t.Fatalf("zombie: erased subject still has %d accessible records", len(recs))
			}
			for _, k := range batchKeys {
				if _, err := s.ReadData(EntityController, PurposeService, k); err != nil {
					t.Fatalf("batch record %s unreadable after race: %v", k, err)
				}
			}
		})
	}
}

// FuzzCheckpointDelta holds the delta-frame decoder to the WAL
// decoder's standard: arbitrary bytes may be rejected with an error,
// never a panic or an attacker-sized allocation, and an accepted frame
// must re-encode through the same sorted-key framing losslessly.
func FuzzCheckpointDelta(f *testing.F) {
	db, err := Open(PBase())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(encodeCheckpointDelta(db))
	if err := db.Create(recTestRecord(0)); err != nil {
		f.Fatal(err)
	}
	if err := db.Create(recTestRecord(1)); err != nil {
		f.Fatal(err)
	}
	f.Add(encodeCheckpointDelta(db))
	f.Add([]byte{})
	f.Add([]byte{checkpointDeltaVersion})
	f.Add([]byte{checkpointDeltaVersion + 1, 0, 0, 0, 0})
	f.Add(append(encodeCheckpointDelta(db), 0xff)) // trailing byte
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decodeCheckpointDelta(data)
		if err != nil {
			return
		}
		// Accepted frames stay bounded by their input: the decoder must
		// not have conjured rows the bytes cannot carry.
		if len(d.deleted)*4 > len(data) || len(d.rows)*8 > len(data) {
			t.Fatalf("decoder inflated %d bytes into %d deletions + %d rows",
				len(data), len(d.deleted), len(d.rows))
		}
	})
}

// BenchmarkIngest is the allocation gate for the batched write path on
// all three backends: CI runs it with -benchtime=100x and budgets
// allocs/op divided by the batch size. Record construction happens off
// the clock so the numbers measure admission (policy synthesis,
// encryption, WAL framing, engine insertion), not the harness.
func BenchmarkIngest(b *testing.B) {
	for _, backend := range []string{BackendHeap, BackendLSM, BackendMmap} {
		for _, batch := range []int{1, 256} {
			b.Run(fmt.Sprintf("backend=%s/batch=%d", backend, batch), func(b *testing.B) {
				p := PBase()
				p.Backend = backend
				p.IncrementalCheckpoints = backend != BackendMmap
				db, err := OpenSharded(p, 4)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				next := 0
				recs := make([]gdprbench.Record, batch)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					for j := range recs {
						recs[j] = gdprbench.Record{
							Key:        fmt.Sprintf("bench-%010d", next),
							Subject:    fmt.Sprintf("bench-subject-%d", next%64),
							Payload:    []byte("bench-payload-0123456789abcdef"),
							Purposes:   []string{"analytics"},
							TTL:        1 << 40,
							Processors: []string{"processor-a"},
						}
						next++
					}
					b.StartTimer()
					if _, err := db.IngestBatch(recs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
