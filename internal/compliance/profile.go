// Package compliance composes the substrates into the paper's three
// GDPR-compliance profiles (§4.2) and exposes the DB facade the
// benchmark harness drives:
//
//   - P_Base: RBAC + native CSV logging (row-level responses) + AES-256
//     at rest + erasure by DELETE+VACUUM. Least restrictive, cheapest.
//   - P_GBench: policies in a separate metadata table (every access
//     joins) + full query/response logging + LUKS-like full-disk
//     encryption + erasure by plain DELETE.
//   - P_SYS: Sieve-style FGAC + AES-128 + encrypted logs carrying
//     policy snapshots at every operation + erasure by DELETE+VACUUM
//     FULL plus deletion of the erased units' log entries.
//
// Each profile also records its groundings in a core.GroundingRegistry,
// making the interpretation-to-system-action mapping inspectable — the
// heart of the paper's Figure 2 pipeline.
package compliance

import (
	"fmt"
	"time"

	"github.com/datacase/datacase/internal/audit"
	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/cryptox"
	"github.com/datacase/datacase/internal/policy"
)

// VacuumStyle selects the maintenance grounding of a profile.
type VacuumStyle uint8

// Vacuum styles.
const (
	// VacuumNone never reclaims dead tuples (P_GBench's plain DELETE).
	VacuumNone VacuumStyle = iota
	// VacuumLazy runs lazy VACUUM when the dead ratio passes the
	// threshold (P_Base's DELETE+VACUUM).
	VacuumLazy
	// VacuumFull rewrites the table when the dead ratio passes the
	// threshold (P_SYS's DELETE+VACUUM FULL).
	VacuumFull
)

// String names the style.
func (v VacuumStyle) String() string {
	switch v {
	case VacuumNone:
		return "none"
	case VacuumLazy:
		return "lazy"
	case VacuumFull:
		return "full"
	default:
		return fmt.Sprintf("vacuum(%d)", uint8(v))
	}
}

// Storage backends for Profile.Backend.
const (
	// BackendHeap is the PostgreSQL-style heap engine: deletes mark
	// tuples dead in place and the vacuum family physically reclaims
	// them (the default).
	BackendHeap = "heap"
	// BackendLSM is the Cassandra-style LSM engine: deletes write
	// tombstones and the erased bytes stay physically resident until
	// compaction — with every regulation-mandated delete registering a
	// purge obligation that bounds that residency (erase-aware
	// compaction).
	BackendLSM = "lsm"
	// BackendMmap is the durable-region heap engine: the table lives in
	// a flat mmap-style byte region whose pages ARE the durable state —
	// mutations are redo-logged in-place transactions, a checkpoint is a
	// page-table snapshot (no row serialization), and recovery
	// re-attaches the crashed region instead of decoding a segment
	// image, so it needs the region snapshots alongside the WAL images
	// (RecoverShardedWithRegions / ShardedDB.Recover).
	BackendMmap = "mmap"
)

// Profile is a complete, grounded interpretation of GDPR compliance.
type Profile struct {
	Name        string
	Description string

	// Backend selects the storage engine of the data table: BackendHeap
	// (the default when empty), BackendLSM, or BackendMmap. Every shard
	// of a sharded deployment uses the same backend; crash recovery
	// rebuilds against the profile's backend, so recover with the
	// crashed deployment's Profile().
	Backend string
	// PurgeWithinOps bounds, for BackendLSM, how many storage
	// operations a purge obligation (registered by every
	// regulation-mandated delete) may stay undischarged before the
	// engine forces the purge compaction. 0 selects the engine default.
	PurgeWithinOps int
	// LSMFlushEntries sets, for BackendLSM, the memtable size in
	// entries before a flush to an sstable run. 0 selects the engine
	// default; tests and benchmarks shrink it so the tombstone
	// retention hazard (shadowed versions in runs) actually forms.
	LSMFlushEntries int

	// NewPolicyEngine builds the profile's access-control engine.
	NewPolicyEngine func() policy.Engine
	// NewLogger builds the profile's audit logger.
	NewLogger func() (audit.Logger, error)

	// PayloadCipher is the at-rest key size for sealed payloads; 0 means
	// the profile uses the LUKS-like block device instead.
	PayloadCipher cryptox.KeySize
	// PayloadKey is the at-rest key itself — the secret a real
	// deployment fetches from its KMS at boot, which survives a crash
	// while process memory does not. Leave it nil and Open/OpenSharded
	// draw a fresh random key, materializing it into the deployment's
	// profile: recover with Profile() of the crashed instance, never
	// with a freshly constructed one. It must be PayloadCipher bytes
	// long when set.
	PayloadKey []byte
	// UseBlockDev stores payloads on an encrypted block device.
	UseBlockDev bool

	// LogResponses records operation responses in the audit log.
	LogResponses bool
	// LogPolicySnapshots serializes the policies in force into every
	// log entry (P_SYS's demonstrable accountability).
	LogPolicySnapshots bool

	// Vacuum is the maintenance grounding; Threshold is the dead-tuple
	// ratio that triggers it.
	Vacuum          VacuumStyle
	VacuumThreshold float64
	// VacuumCheckEvery is how many mutating ops pass between dead-ratio
	// checks (the autovacuum naptime analogue).
	VacuumCheckEvery int

	// EraseLogsOnDelete removes the audit entries of deleted units
	// (P_SYS's log deletion).
	EraseLogsOnDelete bool
	// CascadeDependents strong-deletes derived records in which the
	// erased subject remains identifiable (§3.1's strong deletion; the
	// P_SYS grounding).
	CascadeDependents bool

	// TrackModel mirrors every record as a core.DataUnit with history,
	// enabling invariant checking (costs memory; off for large benches).
	TrackModel bool

	// SerialWAL commits the write-ahead log with per-append locking
	// instead of group commit. The default (false) is group commit; the
	// serial mode exists as the benchmark baseline the group-commit
	// experiments compare against.
	SerialWAL bool

	// NoDecisionCache disables the epoch-invalidated policy decision
	// cache. The default (false) wraps the profile's policy engine in
	// policy.NewCached: repeated adjudications of the same (unit,
	// entity, purpose, action) are served from memory, with every
	// consent-changing mutation bumping the invalidation epoch before it
	// commits — a cached allow can never outlive the consent that
	// justified it. The uncached mode is the benchmark baseline and an
	// escape hatch for engines with At-dependent guards (the standard
	// engines have none).
	NoDecisionCache bool
	// DecisionCacheEntries bounds the decision cache; 0 selects
	// policy.DefaultCacheEntries.
	DecisionCacheEntries int

	// SyncAudit writes every audit record synchronously on the
	// operation's goroutine. The default (false) routes allowed hot-path
	// read records through a bounded async sink (audit.AsyncLogger) —
	// denials, mutations and regulation-required records always stay
	// synchronous, and the sink flushes at every audit, checkpoint, log
	// inspection, log erasure and close, so nothing observable ever
	// misses a record. The synchronous mode is the benchmark baseline.
	SyncAudit bool
	// AuditQueueDepth bounds the async audit queue; 0 selects
	// audit.DefaultAsyncDepth. A full queue blocks readers (bounded
	// backpressure) — records are never dropped.
	AuditQueueDepth int

	// ExclusiveReads makes the read path take the shard's exclusive
	// lock, as the pre-concurrent engine did — reads serialize behind
	// each other and behind writers. It exists as the read-scaling
	// experiment's baseline ("one big mutex") and is never what a
	// deployment wants.
	ExclusiveReads bool

	// IOStall models the storage-device access latency this in-memory
	// substrate otherwise elides: when positive, every payload
	// protect/unprotect sleeps this long, the way a real deployment
	// waits on its disk or KMS. Concurrency experiments set it to make
	// lock-granularity effects measurable — under the exclusive-lock
	// baseline stalls serialize, under the shared-lock read path they
	// overlap. 0 (the default) disables the model entirely.
	IOStall time.Duration

	// WALSyncStall models the device latency of one WAL sync (fsync):
	// when positive, every durable commit — serial or group — sleeps
	// this long exactly once, however many records it carries. It is
	// the cost batched ingestion amortizes: N serial creates pay N
	// stalls, one N-record batch pays one. 0 (the default) keeps syncs
	// free, matching the historical in-memory behavior.
	WALSyncStall time.Duration

	// CheckpointEveryOps, when positive, makes each deployment (each
	// shard, in a sharded deployment) take a durable WAL checkpoint
	// every N mutating operations, truncating the log up to it. 0
	// disables the ops trigger.
	CheckpointEveryOps int
	// CheckpointEveryBytes, when positive, triggers a checkpoint once
	// the WAL has grown that many bytes since the last one. 0 disables
	// the bytes trigger. Either trigger firing takes the checkpoint.
	CheckpointEveryBytes int64

	// TrackSubjectLoad keeps a per-subject operation counter on each
	// shard, feeding the rebalancer's split planning (which subjects to
	// move off a hot shard). One map update per routed op; off by
	// default so steady-state deployments pay nothing.
	TrackSubjectLoad bool

	// RebalanceByBytes makes the Rebalancer weigh shards (and rank
	// subjects in split planning) by per-subject byte volume from the
	// storage engine's space accounting instead of op-rate counters: a
	// shard can be cold in ops yet dominate disk, and a byte-weighted
	// plan moves the bulk, not the chatter. Off by default.
	RebalanceByBytes bool

	// IncrementalCheckpoints makes the periodic checkpointer emit delta
	// frames — only the rows dirtied since the last checkpoint, chained
	// to the last full image — instead of a full table snapshot every
	// time, turning checkpoint cost from O(table) to O(dirty). A full
	// image is still forced every FullCheckpointEvery deltas (and is the
	// only point the WAL truncates at). Off by default.
	IncrementalCheckpoints bool
	// FullCheckpointEvery bounds how many consecutive delta frames may
	// chain to one full image before the next checkpoint is forced full;
	// 0 selects DefaultFullCheckpointEvery. Only meaningful with
	// IncrementalCheckpoints.
	FullCheckpointEvery int
}

// DefaultFullCheckpointEvery is the delta-chain length cap when
// Profile.FullCheckpointEvery is 0: after this many delta frames the
// next checkpoint is forced full, re-anchoring the chain and letting
// the WAL truncate.
const DefaultFullCheckpointEvery = 8

// validate rejects incomplete profiles.
func (p Profile) validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("compliance: profile needs a name")
	case p.NewPolicyEngine == nil:
		return fmt.Errorf("compliance: profile %s needs a policy engine", p.Name)
	case p.NewLogger == nil:
		return fmt.Errorf("compliance: profile %s needs a logger", p.Name)
	case !p.UseBlockDev && !p.PayloadCipher.Valid():
		return fmt.Errorf("compliance: profile %s needs a payload cipher or block device", p.Name)
	case len(p.PayloadKey) > 0 && cryptox.KeySize(len(p.PayloadKey)) != p.PayloadCipher:
		return fmt.Errorf("compliance: profile %s payload key is %d bytes, cipher wants %d",
			p.Name, len(p.PayloadKey), int(p.PayloadCipher))
	case p.VacuumThreshold < 0 || p.VacuumThreshold > 1:
		return fmt.Errorf("compliance: profile %s has vacuum threshold %f", p.Name, p.VacuumThreshold)
	case p.Backend != "" && p.Backend != BackendHeap && p.Backend != BackendLSM && p.Backend != BackendMmap:
		return fmt.Errorf("compliance: profile %s has unknown storage backend %q (want %q, %q, or %q)",
			p.Name, p.Backend, BackendHeap, BackendLSM, BackendMmap)
	case p.Backend == BackendMmap && p.UseBlockDev:
		return fmt.Errorf("compliance: profile %s combines the mmap backend with a block device; "+
			"the region already is the durable byte store", p.Name)
	}
	return nil
}

// PBase returns the P_Base profile: role-based access control, native
// CSV logging with row-level responses, AES-256, DELETE+VACUUM.
func PBase() Profile {
	return Profile{
		Name: "P_Base",
		Description: "RBAC + CSV logs (row-level responses) + AES-256 + " +
			"DELETE+VACUUM; the least restrictive grounding",
		NewPolicyEngine: func() policy.Engine { return policy.NewRBAC() },
		NewLogger: func() (audit.Logger, error) {
			return audit.NewCSVLogger(true), nil
		},
		PayloadCipher:    cryptox.AES256,
		LogResponses:     true,
		Vacuum:           VacuumLazy,
		VacuumThreshold:  0.2,
		VacuumCheckEvery: 256,
	}
}

// PGBench returns the P_GBench profile: policies in a separate metadata
// table (joins on every access), full query+response logging, LUKS-like
// block-device encryption, plain DELETE.
func PGBench() Profile {
	return Profile{
		Name: "P_GBench",
		Description: "separate policy table (joins) + full query logging + " +
			"LUKS-like block device + plain DELETE",
		NewPolicyEngine: func() policy.Engine { return policy.NewMetaStore() },
		NewLogger: func() (audit.Logger, error) {
			return audit.NewQueryLogger(), nil
		},
		UseBlockDev:      true,
		LogResponses:     true,
		Vacuum:           VacuumNone,
		VacuumCheckEvery: 256,
	}
}

// PSYS returns the P_SYS profile: Sieve-style fine-grained access
// control, AES-128, encrypted logs with per-operation policy snapshots,
// DELETE+VACUUM FULL plus log deletion.
func PSYS() Profile {
	return Profile{
		Name: "P_SYS",
		Description: "Sieve-style FGAC + AES-128 + encrypted logs with policy " +
			"snapshots + DELETE+VACUUM FULL + log erasure",
		NewPolicyEngine: func() policy.Engine {
			return policy.NewSieve(policy.SubjectConsentGuard())
		},
		NewLogger: func() (audit.Logger, error) {
			key, err := cryptox.GenerateKey(cryptox.AES128)
			if err != nil {
				return nil, err
			}
			sealer, err := cryptox.NewAESGCM(key, nil)
			if err != nil {
				return nil, err
			}
			return audit.NewEncryptedLogger(sealer), nil
		},
		PayloadCipher:      cryptox.AES128,
		LogResponses:       true,
		LogPolicySnapshots: true,
		Vacuum:             VacuumFull,
		VacuumThreshold:    0.2,
		VacuumCheckEvery:   256,
		EraseLogsOnDelete:  true,
		CascadeDependents:  true,
	}
}

// Profiles returns the three paper profiles in Figure-4 order.
func Profiles() []Profile {
	return []Profile{PBase(), PGBench(), PSYS()}
}

// PaperBaseline returns the profile with the post-paper accelerators
// disabled: no decision cache, fully synchronous audit logging. The
// paper's systems (PostgreSQL, the GDPRBench stores, Sieve) pay their
// full adjudication and logging tax on every operation — figure
// reproductions must measure that configuration, or the cache would
// quietly reorder the groundings' costs (it accelerates the strict
// profiles most, which is the point of the read-path redesign but not
// of Figure 4).
func (p Profile) PaperBaseline() Profile {
	p.NoDecisionCache = true
	p.SyncAudit = true
	return p
}

// Groundings records the profile's concept interpretations and their
// system-action mappings in a registry (Figure 2's pipeline, made
// inspectable).
func (p Profile) Groundings() *core.GroundingRegistry {
	r := core.NewGroundingRegistry(p.Name)
	// Errors are impossible below: names are distinct literals.
	_ = core.DeclareErasureInterpretations(r)
	switch p.Vacuum {
	case VacuumLazy:
		_ = r.Choose(core.ConceptErasure, core.EraseDelete.String(),
			core.SystemAction{System: "psql-like-heap", Operation: "DELETE+VACUUM", Supported: true})
	case VacuumNone:
		_ = r.Choose(core.ConceptErasure, core.EraseDelete.String(),
			core.SystemAction{System: "psql-like-heap", Operation: "DELETE", Supported: true},
			core.SystemAction{System: "blockdev", Operation: "orphan sector (retained!)", Supported: false})
	case VacuumFull:
		_ = r.Choose(core.ConceptErasure, core.EraseStrongDelete.String(),
			core.SystemAction{System: "psql-like-heap", Operation: "DELETE+VACUUM FULL", Supported: true},
			core.SystemAction{System: "audit", Operation: "erase unit log entries", Supported: true})
	}
	_ = r.Declare(core.Interpretation{
		Concept: core.ConceptPolicy, Name: "rbac",
		Description: "role-based, table-level", Strictness: 0,
	})
	_ = r.Declare(core.Interpretation{
		Concept: core.ConceptPolicy, Name: "metadata-join",
		Description: "per-unit policy rows joined at query time", Strictness: 1,
	})
	_ = r.Declare(core.Interpretation{
		Concept: core.ConceptPolicy, Name: "fgac",
		Description: "fine-grained guarded policies with a policy index", Strictness: 2,
	})
	_ = r.Declare(core.Interpretation{
		Concept: core.ConceptHistory, Name: "csv-log",
		Description: "native CSV logging, row-level responses", Strictness: 0,
	})
	_ = r.Declare(core.Interpretation{
		Concept: core.ConceptHistory, Name: "query-log",
		Description: "all queries and responses, structured", Strictness: 1,
	})
	_ = r.Declare(core.Interpretation{
		Concept: core.ConceptHistory, Name: "encrypted-log",
		Description: "sealed entries with policy snapshots", Strictness: 2,
	})
	switch p.Name {
	case "P_Base":
		_ = r.Choose(core.ConceptPolicy, "rbac",
			core.SystemAction{System: "rbac", Operation: "role attribute check", Supported: true})
		_ = r.Choose(core.ConceptHistory, "csv-log",
			core.SystemAction{System: "audit", Operation: "csv append", Supported: true})
	case "P_GBench":
		_ = r.Choose(core.ConceptPolicy, "metadata-join",
			core.SystemAction{System: "metastore", Operation: "index range join", Supported: true})
		_ = r.Choose(core.ConceptHistory, "query-log",
			core.SystemAction{System: "audit", Operation: "structured append", Supported: true})
	case "P_SYS":
		_ = r.Choose(core.ConceptPolicy, "fgac",
			core.SystemAction{System: "sieve", Operation: "policy-index probe + guards", Supported: true})
		_ = r.Choose(core.ConceptHistory, "encrypted-log",
			core.SystemAction{System: "audit", Operation: "seal + append", Supported: true})
	}
	return r
}
