package compliance

import (
	"fmt"
	"strings"

	"github.com/datacase/datacase/internal/core"
)

// Breach handling (GDPR Arts. 33-34): detections and notifications are
// recorded as history tuples under a breach pseudo-unit, so the
// notification deadline is checked by the same invariant machinery as
// everything else.

// BreachNotificationWindow is the notification deadline in logical time
// units (the 72-hour analogue).
const BreachNotificationWindow core.Time = 72

// RecordBreach records the detection of a personal data breach
// affecting the given records.
func (db *DB) RecordBreach(id string, affectedKeys []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.recordBreachLocked(id, affectedKeys)
}

// recordBreachLocked is RecordBreach's body; caller holds mu.
func (db *DB) recordBreachLocked(id string, affectedKeys []string) error {
	if id == "" {
		return fmt.Errorf("compliance: breach needs an id")
	}
	now := db.clock.Tick()
	unit := core.BreachUnitID(id)
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: core.PurposeLegalObligation, Entity: EntitySystem,
		Action: core.Action{
			Kind:                 core.ActionWriteMetadata,
			SystemAction:         core.BreachDetectedAction,
			RequiredByRegulation: true,
		},
		At: now,
	}
	db.logOp(tuple, "BREACH DETECTED", []byte(strings.Join(affectedKeys, ",")), "", nil)
	if db.history != nil {
		db.history.MustAppend(tuple)
	}
	return nil
}

// NotifyBreach records that the supervisory authority and affected data
// subjects were notified of the breach.
func (db *DB) NotifyBreach(id string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.notifyBreachLocked(id)
}

// notifyBreachLocked is NotifyBreach's body; caller holds mu.
func (db *DB) notifyBreachLocked(id string) error {
	if id == "" {
		return fmt.Errorf("compliance: breach needs an id")
	}
	now := db.clock.Tick()
	unit := core.BreachUnitID(id)
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: core.PurposeLegalObligation, Entity: EntitySystem,
		Action: core.Action{
			Kind:                 core.ActionWriteMetadata,
			SystemAction:         core.BreachNotifiedAction,
			RequiredByRegulation: true,
		},
		At: now,
	}
	db.logOp(tuple, "BREACH NOTIFIED", nil, "", nil)
	if db.history != nil {
		db.history.MustAppend(tuple)
	}
	return nil
}

// withBreachInvariant extends the invariant set with the breach
// notification invariant (shared by the single and sharded audits).
func withBreachInvariant(invs *core.InvariantSet) (*core.InvariantSet, error) {
	full, err := core.NewInvariantSet()
	if err != nil {
		return nil, err
	}
	if invs != nil {
		for _, id := range invs.IDs() {
			inv, _ := invs.Lookup(id)
			if err := full.Add(inv); err != nil {
				return nil, err
			}
		}
	}
	if err := full.Add(core.NewBreachNotificationInvariant(BreachNotificationWindow)); err != nil {
		return nil, err
	}
	return full, nil
}

// AuditWithBreaches evaluates the default invariant set plus the breach
// notification invariant.
func (db *DB) AuditWithBreaches(invs *core.InvariantSet) (Report, error) {
	full, err := withBreachInvariant(invs)
	if err != nil {
		return Report{}, err
	}
	return db.Audit(full)
}
