package compliance

import (
	"fmt"

	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/policy"
	"github.com/datacase/datacase/internal/provenance"
	"github.com/datacase/datacase/internal/storage"
)

// This file adds derived data to the deployments: records computed from
// base records, tracked in a provenance graph. Derived data is what
// separates plain deletion from strong deletion (§3.1): under the
// strong grounding (P_SYS), erasing a record cascades to every derived
// record in which the data subject is still identifiable.

// Transform computes a derived payload from parent payloads.
type Transform func(parents [][]byte) []byte

// derivedParent is one policy-checked, decoded derivation input.
type derivedParent struct {
	unit    core.UnitID
	payload []byte
	meta    Metadata
	// model is the parent's model-mirror unit; nil when the DB does not
	// track the model, the unit is unknown, or the parent lives on
	// another shard (cross-shard derivations must not read a foreign
	// shard's model units without its lock).
	model *core.DataUnit
}

// fetchParentLocked policy-checks and decodes one derivation parent.
// Caller holds mu.
func (db *DB) fetchParentLocked(entity core.EntityID, purpose core.Purpose, key string, now core.Time) (derivedParent, error) {
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return derivedParent{}, fmt.Errorf("%w: parent %s", ErrNotFound, key)
	}
	unit := core.UnitID(key)
	d := db.policies.Allow(policy.Request{
		Unit: unit, Subject: core.EntityID(metaSubject(row)),
		Entity: entity, Purpose: purpose, Action: core.ActionRead, At: now,
	})
	if !d.Allowed {
		db.counters.denials.Add(1)
		return derivedParent{}, fmt.Errorf("%w: parent %s: %s", ErrDenied, key, d.Reason)
	}
	rec, err := decodeRecord(row)
	if err != nil {
		return derivedParent{}, err
	}
	payload, err := db.unprotect(rec.Blob)
	if err != nil {
		return derivedParent{}, err
	}
	p := derivedParent{unit: unit, payload: payload, meta: rec.Meta}
	if db.modelDB != nil {
		if u, ok := db.modelDB.Lookup(unit); ok {
			p.model = u
		}
	}
	return p, nil
}

// combineParents computes the derived record's restricted metadata
// (§2.1): the purposes are the intersection, the TTL the minimum, and
// the subject is the parents' common subject — or "aggregate" when they
// differ (aggregates over several subjects do not identify one person;
// strong deletion of a single subject will not cascade to them).
func combineParents(parents []derivedParent) (subject string, purposes []string, minTTL int64) {
	subject = parents[0].meta.Subject
	purposes = parents[0].meta.Purposes
	minTTL = int64(1) << 62
	uniform := true
	for i, p := range parents {
		if i > 0 {
			if p.meta.Subject != parents[0].meta.Subject {
				uniform = false
			}
			purposes = intersectStrings(purposes, p.meta.Purposes)
		}
		if p.meta.TTL < minTTL {
			minTTL = p.meta.TTL
		}
	}
	if !uniform {
		subject = aggregateSubject
	}
	return subject, purposes, minTTL
}

// aggregateSubject marks cross-subject derived records: no single
// person is identifiable, no subject-scoped right targets them, and
// the sharded engine places them by record key instead of subject.
const aggregateSubject = "aggregate"

// insertDerivedLocked stores the derived record, attaches its restricted
// policies, records the provenance edge and logs the derivation. Caller
// holds mu. The model unit is built from the parents' units only when
// every parent carries one (same-shard derivations); otherwise it stands
// alone as a KindDerived unit.
func (db *DB) insertDerivedLocked(entity core.EntityID, purpose core.Purpose, newKey string,
	parents []derivedParent, subject string, purposes []string, minTTL int64,
	derived []byte, invertible bool, description string, now core.Time) error {
	meta := Metadata{
		Subject:  subject,
		Purposes: purposes,
		TTL:      minTTL,
		BaseTTL:  minTTL,
		// Derived data stays in-house unless re-consented.
		Processors: nil,
	}
	blob, err := db.protect(derived)
	if err != nil {
		return err
	}
	row := encodeRecord(storedRecord{Meta: meta, Blob: blob})
	if err := db.data.Insert([]byte(newKey), row); err != nil {
		return err
	}
	db.personalBytes += int64(len(derived))
	db.metaBytes += int64(len(row) - len(blob))

	unit := core.UnitID(newKey)
	deadline := core.Time(int64(now) + minTTL)
	pols := []core.Policy{
		{Purpose: PurposeService, Entity: EntityController, Begin: now, End: deadline},
		{Purpose: PurposeSubjectAccess, Entity: EntitySubjectSvc, Begin: now, End: deadline},
		{Purpose: core.PurposeComplianceErase, Entity: EntitySystem, Begin: now, End: deadline},
	}
	if err := db.policies.AttachPolicies(unit, core.EntityID(subject), pols); err != nil {
		return err
	}
	parentUnits := make([]core.UnitID, 0, len(parents))
	modelParents := make([]*core.DataUnit, 0, len(parents))
	for _, p := range parents {
		parentUnits = append(parentUnits, p.unit)
		if p.model != nil {
			modelParents = append(modelParents, p.model)
		}
	}
	if err := db.prov.AddDerivation(provenance.Derivation{
		Child: unit, Parents: parentUnits,
		Invertible: invertible, Description: description,
	}); err != nil {
		return err
	}
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: purpose, Entity: entity,
		Action: core.Action{Kind: core.ActionDerive, SystemAction: "INSERT derived"}, At: now,
	}
	db.logOp(tuple, "DERIVE "+description, nil, unit, nil)
	if db.modelDB != nil {
		var u *core.DataUnit
		if len(modelParents) == len(parents) {
			u = core.NewDerivedUnit(unit, now, modelParents...)
		} else {
			u = core.NewDataUnit(unit, core.KindDerived, core.EntityID(subject), "derivation")
		}
		u.SetValue(derived, now)
		for _, p := range pols {
			_ = u.Grant(p, now)
		}
		_ = db.modelDB.Add(u)
		db.history.MustAppend(tuple)
	}
	db.counters.creates.Add(1)
	return nil
}

// Derive creates a derived record from parent records: the entity must
// be allowed to read every parent for the purpose; the derived record's
// subject aggregates the parents' subjects, its purposes are the
// intersection, and its TTL is the minimum — the policy restriction of
// §2.1. The derivation is recorded in the provenance graph.
func (db *DB) Derive(entity core.EntityID, purpose core.Purpose, newKey string,
	parentKeys []string, f Transform, invertible bool, description string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deriveLocked(entity, purpose, newKey, parentKeys, f, invertible, description)
}

// deriveLocked is Derive's body; caller holds mu.
func (db *DB) deriveLocked(entity core.EntityID, purpose core.Purpose, newKey string,
	parentKeys []string, f Transform, invertible bool, description string) error {
	if len(parentKeys) == 0 {
		return fmt.Errorf("compliance: derivation needs at least one parent")
	}
	now := db.clock.Tick()

	parents := make([]derivedParent, 0, len(parentKeys))
	payloads := make([][]byte, 0, len(parentKeys))
	for _, pk := range parentKeys {
		p, err := db.fetchParentLocked(entity, purpose, pk, now)
		if err != nil {
			return err
		}
		parents = append(parents, p)
		payloads = append(payloads, p.payload)
	}
	subject, purposes, minTTL := combineParents(parents)
	derived := f(payloads)
	return db.insertDerivedLocked(entity, purpose, newKey, parents,
		subject, purposes, minTTL, derived, invertible, description, now)
}

// Provenance exposes the provenance graph (reports, tests).
func (db *DB) Provenance() *provenance.Graph { return db.prov }

// cascadeTargets lists the live same-subject dependents that a strong
// delete of the unit will cascade to — the key set a durable cascade
// intent must cover before the first physical delete. Caller holds mu.
func (db *DB) cascadeTargets(unit core.UnitID, subject []byte) []string {
	var out []string
	for _, dep := range db.prov.Dependents(unit) {
		row, ok := db.data.Get([]byte(dep))
		if !ok || string(metaSubject(row)) != string(subject) {
			continue
		}
		out = append(out, string(dep))
	}
	return out
}

// cascadeDependents strong-deletes every derived record in which the
// erased subject remains identifiable. Caller holds mu and has already
// deleted the primary record.
func (db *DB) cascadeDependents(unit core.UnitID, subject []byte, entity core.EntityID, now core.Time) {
	for _, dep := range db.prov.Dependents(unit) {
		row, ok := db.data.Get([]byte(dep))
		if !ok {
			continue // already gone
		}
		if string(metaSubject(row)) != string(subject) {
			continue // subject not identifiable in the dependent
		}
		if err := db.data.Delete([]byte(dep)); err != nil {
			continue
		}
		// The cascade is part of the strong delete: its targets get the
		// same bounded-residency guarantee as the primary record.
		if pg, ok := db.data.(storage.Purger); ok {
			pg.RegisterPurge([]byte(dep))
		}
		if db.onDelete != nil {
			db.onDelete(string(dep))
		}
		db.policies.RevokePolicies(dep)
		if db.profile.EraseLogsOnDelete {
			_, _ = db.logger.EraseUnit(dep)
		}
		tuple := core.HistoryTuple{
			Unit: dep, Purpose: core.PurposeComplianceErase, Entity: entity,
			Action: core.Action{
				Kind: core.ActionErase, SystemAction: "DELETE (dependent)",
				RequiredByRegulation: true,
			},
			At: now,
		}
		db.logOp(tuple, "DELETE dependent", nil, dep, nil)
		if db.modelDB != nil {
			if u, ok := db.modelDB.Lookup(dep); ok {
				u.RevokeAllPolicies(now)
				u.MarkErased(now)
			}
			db.history.MustAppend(tuple)
		}
		db.counters.cascadeDeletes.Add(1)
	}
}

func intersectStrings(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, s := range b {
		set[s] = true
	}
	var out []string
	for _, s := range a {
		if set[s] {
			out = append(out, s)
		}
	}
	return out
}
