package compliance

import "fmt"

// SpaceReport is the paper's Table 2 for one profile: the footprint of
// personal data versus everything the grounding adds around it.
type SpaceReport struct {
	Profile string
	// PersonalBytes is the plaintext size of live personal data —
	// identical across profiles for the same dataset.
	PersonalBytes int64
	// MetadataBytes is the grounding's weight inside the database:
	// record metadata blocks plus policy storage.
	MetadataBytes int64
	// IndexBytes covers primary and policy indices.
	IndexBytes int64
	// LogBytes is the audit-log footprint. Like PostgreSQL server logs,
	// it lives outside the database files, so it is reported separately
	// and not counted in TotalBytes (the paper's Table 2 measures
	// database size).
	LogBytes int64
	// TotalBytes is the whole database on "disk": heap pages, indices,
	// policy store, encrypted device.
	TotalBytes int64
	// Factor is TotalBytes / PersonalBytes ("space factor", the
	// metadata-explosion measure of [69]).
	Factor float64
}

// String renders one Table 2 row.
func (r SpaceReport) String() string {
	return fmt.Sprintf("%-9s personal=%8.2fMB metadata=%8.2fMB total=%8.2fMB factor=%5.1fx (logs %.2fMB)",
		r.Profile, mb(r.PersonalBytes), mb(r.MetadataBytes), mb(r.TotalBytes), r.Factor, mb(r.LogBytes))
}

func mb(b int64) float64 { return float64(b) / (1024 * 1024) }

// Space measures the deployment's current footprint. A read: shared
// lock (the byte-accounting fields are only written under the
// exclusive lock, which the shared hold excludes; the logger's
// SizeBytes flushes the async sink itself).
func (db *DB) Space() SpaceReport {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sp := db.data.Space()
	var rep SpaceReport
	rep.Profile = db.profile.Name
	rep.PersonalBytes = db.personalBytes
	rep.IndexBytes = sp.IndexBytes
	rep.LogBytes = db.logger.SizeBytes()
	rep.MetadataBytes = db.metaBytes + db.policies.SpaceBytes()
	// Engine TotalBytes already includes the index/filter footprint.
	rep.TotalBytes = sp.TotalBytes + db.policies.SpaceBytes()
	if db.blockdev != nil {
		rep.TotalBytes += int64(db.blockdev.Sectors()) * int64(db.blockdev.SectorLen)
	}
	if rep.PersonalBytes > 0 {
		rep.Factor = float64(rep.TotalBytes) / float64(rep.PersonalBytes)
	}
	return rep
}
