package compliance

import (
	"fmt"

	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/policy"
	"github.com/datacase/datacase/internal/storage"
	"github.com/datacase/datacase/internal/wal"
)

// Elastic resharding (ARCHITECTURE.md §7): live shard splits and
// merges. A split freezes one source shard, copies the moving
// subjects' rows — with their exact policy state, so consent
// revocations and erasures can never lag the payloads they govern —
// into a freshly opened destination shard, makes the move durable with
// a single checkpoint record that embeds the post-split directory, and
// only then flips the live directory. The commit point is that one
// checkpoint: recovery classifies a destination segment without it as
// debris (the split never happened) and one with it as a live member
// of the post-split topology. A merge is the same protocol against an
// existing destination segment, with a RecDirectory record standing in
// for the birth record as the pre-change fallback.
//
// Crash windows (each recovers to exactly one topology, never a
// hybrid):
//
//   - Before the commit checkpoint: the destination segment is debris
//     (split) or its copied rows misroute under the old directory
//     (merge); recovery rebuilds the pre-change deployment.
//   - A torn commit checkpoint: the segment scanner discards it, which
//     is the previous case.
//   - After the commit, before or during source cleanup: recovery
//     adopts the new directory (it has the highest epoch) and the
//     misroute pass deletes the source's stale copies.
//
// Erase barrier: the source shard's mutex is held exclusively across
// the whole migration, so an EraseSubject or RevokeConsent racing the
// split either completes before the copy begins — and the migration
// moves the post-erase state — or blocks until the directory flip and
// then revalidates its routing onto the destination. On neither side
// can an erased record stay readable, and the policy fence dropped on
// both engines at the flip keeps the decision cache from serving an
// allow adjudicated against pre-flip placement.

// reshardHooks are test-only cut points inside a migration. Each hook
// receives the durable segment images of every shard at that moment —
// including the unpublished destination's — so the crash matrix can
// recover "what the disk held" at each stage. Nil hooks (production)
// cost nothing.
type reshardHooks struct {
	afterFreeze func(images [][]byte)
	afterReplay func(images [][]byte)
	beforeFlip  func(images [][]byte)
	afterFlip   func(images [][]byte)
}

// captureImages snapshots every shard's durable segment image, plus an
// unpublished extra shard's (the split destination before its flip).
func (s *ShardedDB) captureImages(extra *DB) [][]byte {
	shards := s.view()
	images := make([][]byte, 0, len(shards)+1)
	for _, db := range shards {
		images = append(images, db.SegmentImage())
	}
	if extra != nil {
		images = append(images, extra.SegmentImage())
	}
	return images
}

func (s *ShardedDB) fireHook(h func([][]byte), extra *DB) {
	if h != nil {
		h(s.captureImages(extra))
	}
}

// placementName returns the directory name a row is placed by: its
// subject, except aggregates (cross-subject derived records), which
// are placed by record key.
func placementName(key, row []byte) string {
	sub := metaSubject(row)
	if string(sub) == aggregateSubject {
		return string(key)
	}
	return string(sub)
}

// fencePolicies drops every cached adjudication on the shard's policy
// engine (no-op for uncached engines).
func fencePolicies(db *DB) {
	if f, ok := db.policies.(policy.Fencer); ok {
		f.Fence()
	}
}

// SplitShard moves the given subjects (and aggregate record keys) off
// shard src onto a freshly opened shard and returns the new shard's
// index. Every moving name must currently route to src. The source is
// frozen (its mutex held exclusively) for the whole migration; other
// shards keep serving throughout, and operations routed at the source
// block and then revalidate — see the protocol comment above.
func (s *ShardedDB) SplitShard(src int, moving []string) (int, error) {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()

	shards := s.view()
	if src < 0 || src >= len(shards) {
		return -1, fmt.Errorf("compliance: split: no shard %d", src)
	}
	if len(moving) == 0 {
		return -1, fmt.Errorf("compliance: split: no subjects to move")
	}
	source := shards[src]

	// Freeze the source for the whole migration. reshardMu serializes
	// migrations, so no other split/merge holds shard mutexes; routed
	// operations hold at most this one shard lock and never block on
	// another shard while holding it, so the freeze cannot deadlock.
	source.mu.Lock()
	defer source.mu.Unlock()

	// Stage the post-split directory.
	s.dirMu.RLock()
	cur := s.subjects
	destIdx := uint32(len(s.shards))
	movingSet := make(map[string]bool, len(moving))
	var routeErr error
	for _, name := range moving {
		if cur.route(name) != uint32(src) {
			routeErr = fmt.Errorf("compliance: split: %q does not route to shard %d", name, src)
			break
		}
		movingSet[name] = true
	}
	if routeErr != nil {
		s.dirMu.RUnlock()
		return -1, routeErr
	}
	if cur.retired(uint32(src)) {
		s.dirMu.RUnlock()
		return -1, fmt.Errorf("compliance: split: shard %d is retired", src)
	}
	next := cur.clone()
	next.epoch++
	if next.overrides == nil {
		next.overrides = make(map[string]uint32, len(moving))
	}
	for _, name := range moving {
		next.overrides[name] = destIdx
	}
	curBlob := encodeDirectory(cur)
	nextBlob := encodeDirectory(next)
	s.dirMu.RUnlock()

	// Open the destination. Its first WAL record is the birth record:
	// the split's epoch plus the pre-split directory, so recovery can
	// classify the segment as debris (no commit checkpoint follows) or
	// live, and in the debris case still knows the topology to fall
	// back to even on checkpoint-free profiles.
	dest, err := openNamed(s.profile, shardTableName(s.profile, int(destIdx)), source.clock)
	if err != nil {
		return -1, err
	}
	dest.onDelete = s.forget
	dest.data.Log().Append(wal.RecShardBirth, nil,
		encodeShardBirth(shardBirth{epoch: next.epoch, source: uint32(src), oldDir: curBlob}))
	s.fireHook(s.hooks.afterFreeze, dest)

	// Copy the moving rows out of the frozen source, with their exact
	// policy state when the engine can enumerate it — consent
	// revocations and erasures migrate with (never behind) the payloads
	// they govern. Engines that cannot enumerate re-derive the bundle
	// from row metadata, exactly as crash recovery does.
	lister, hasLister := source.policies.(policy.PolicyLister)
	var moved []checkpointRow
	source.data.SeqScan(func(k, v []byte) bool {
		if !movingSet[placementName(k, v)] {
			return true
		}
		cr := checkpointRow{
			key: append([]byte(nil), k...),
			row: append([]byte(nil), v...),
		}
		if hasLister {
			cr.hasPolicies = true
			cr.policies = lister.PoliciesOf(core.UnitID(cr.key))
		}
		moved = append(moved, cr)
		return true
	})

	// Block-device profiles carry sector references into the source's
	// device; rewrite each payload through the destination's device so
	// the moved rows reference storage the destination owns.
	var movedPersonal, movedMeta int64
	for i := range moved {
		rec, err := decodeRecord(moved[i].row)
		if err != nil {
			return -1, fmt.Errorf("compliance: split: row %q: %w", moved[i].key, err)
		}
		movedPersonal += source.plaintextLen(rec.Blob)
		movedMeta += int64(len(moved[i].row) - len(rec.Blob))
		if s.profile.UseBlockDev {
			payload, err := source.unprotect(rec.Blob)
			if err != nil {
				return -1, err
			}
			blob, err := dest.protect(payload)
			if err != nil {
				return -1, err
			}
			rec.Blob = blob
			moved[i].row = encodeRecord(rec)
		}
	}

	// Replay the moved half into the destination through the same
	// bulk-load path recovery uses for checkpoint snapshots.
	cs := checkpointState{
		clock:         int64(source.clock.Now()),
		nextSector:    dest.nextSector,
		personalBytes: movedPersonal,
		metaBytes:     movedMeta,
		rows:          moved,
	}
	var st RecoveryStats
	if err := dest.restoreCheckpoint(cs, &st); err != nil {
		return -1, err
	}
	if dest.modelDB != nil {
		if err := dest.rebuildModelMirror(); err != nil {
			return -1, err
		}
	}
	s.fireHook(s.hooks.afterReplay, dest)

	// COMMIT: one durable checkpoint carrying the rows, their policies
	// and the post-split directory. The birth record is deliberately
	// not truncated away — a torn checkpoint must leave the segment
	// classifiable as debris, which needs the birth record intact.
	dest.dirSnapshot = func() []byte { return nextBlob }
	dest.flushAudit()
	dest.data.Log().Checkpoint(encodeCheckpointState(dest))
	dest.counters.checkpoints.Add(1)
	dest.walBytesAtCheckpoint = dest.data.Log().SizeBytes()
	s.fireHook(s.hooks.beforeFlip, dest)

	// FLIP: publish the destination and the new directory atomically.
	// In-flight operations that resolved their route before this block
	// hold the source's mutex (we do) or another shard's (unaffected);
	// everyone who validates after it routes by the new epoch.
	movedKeys := make([]string, len(moved))
	for i, cr := range moved {
		movedKeys[i] = string(cr.key)
	}
	s.dirMu.Lock()
	grown := make([]*DB, len(s.shards)+1)
	copy(grown, s.shards)
	grown[destIdx] = dest
	s.shards = grown
	s.subjects = next
	for _, k := range movedKeys {
		s.dir[k] = destIdx
	}
	s.dirMu.Unlock()
	dest.dirSnapshot = s.dirBlob
	fencePolicies(source)
	fencePolicies(dest)

	// Source cleanup, still under the frozen source's mutex: physically
	// delete the moved rows (raw engine deletes — each logs an
	// idempotent RecDelete; onDelete must NOT run, the directory
	// entries now point at the destination), revoke their local policy
	// state, and drop their model units and load history.
	for _, cr := range moved {
		if err := source.data.Delete(cr.key); err != nil {
			continue
		}
		if pg, ok := source.data.(storage.Purger); ok {
			pg.RegisterPurge(cr.key)
		}
		unit := core.UnitID(cr.key)
		source.policies.RevokePolicies(unit)
		if source.modelDB != nil {
			source.modelDB.Remove(unit)
		}
	}
	source.personalBytes -= movedPersonal
	source.metaBytes -= movedMeta
	if source.loads != nil {
		source.loads.drop(moving)
	}
	source.noteClockLocked(true)
	source.logOp(core.HistoryTuple{
		Unit:    core.UnitID(fmt.Sprintf("reshard:split:%d", src)),
		Purpose: PurposeService, Entity: EntitySystem,
		Action: core.Action{Kind: core.ActionWriteMetadata, SystemAction: "SHARD SPLIT"},
		At:     source.clock.Tick(),
	}, "SHARD SPLIT",
		[]byte(fmt.Sprintf("epoch %d: %d names, %d records -> shard %d",
			next.epoch, len(moving), len(moved), destIdx)), "", nil)
	s.fireHook(s.hooks.afterFlip, nil)
	return int(destIdx), nil
}

// MergeShards folds shard from into shard to: every row (and its
// policy state) is copied into to, the directory gains a redirect so
// everything that routed to from routes to to, and from is retired —
// it stays in the shard slice, empty, and the directory never routes
// to it again. Both shards are frozen for the duration; the commit
// point is to's checkpoint embedding the post-merge directory.
func (s *ShardedDB) MergeShards(from, to int) error {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()

	shards := s.view()
	if from < 0 || from >= len(shards) || to < 0 || to >= len(shards) || from == to {
		return fmt.Errorf("compliance: merge: bad shard pair (%d, %d)", from, to)
	}
	fromDB, toDB := shards[from], shards[to]

	// Freeze both, in index order (the global shard-lock order).
	lo, hi := fromDB, toDB
	if from > to {
		lo, hi = toDB, fromDB
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	hi.mu.Lock()
	defer hi.mu.Unlock()

	s.dirMu.RLock()
	cur := s.subjects
	if cur.retired(uint32(from)) || cur.retired(uint32(to)) {
		s.dirMu.RUnlock()
		return fmt.Errorf("compliance: merge: shard pair (%d, %d) includes a retired shard", from, to)
	}
	curBlob := encodeDirectory(cur)
	s.dirMu.RUnlock()

	// Durable pre-change directory on the destination segment: if the
	// merge never commits, recovery falls back to this topology and the
	// misroute pass removes the copies inserted below.
	toDB.data.Log().Append(wal.RecDirectory, nil, curBlob)
	s.fireHook(s.hooks.afterFreeze, nil)

	// Copy every row of from into to, with exact policies where the
	// engine can enumerate them. The inserts WAL-log individually —
	// durable but uncommitted until the checkpoint below.
	lister, hasLister := fromDB.policies.(policy.PolicyLister)
	var moved []checkpointRow
	fromDB.data.SeqScan(func(k, v []byte) bool {
		cr := checkpointRow{
			key: append([]byte(nil), k...),
			row: append([]byte(nil), v...),
		}
		if hasLister {
			cr.hasPolicies = true
			cr.policies = lister.PoliciesOf(core.UnitID(cr.key))
		}
		moved = append(moved, cr)
		return true
	})
	var movedPersonal, movedMeta int64
	movedKeys := make([]string, 0, len(moved))
	for i := range moved {
		rec, err := decodeRecord(moved[i].row)
		if err != nil {
			return fmt.Errorf("compliance: merge: row %q: %w", moved[i].key, err)
		}
		movedPersonal += fromDB.plaintextLen(rec.Blob)
		movedMeta += int64(len(moved[i].row) - len(rec.Blob))
		if s.profile.UseBlockDev {
			payload, err := fromDB.unprotect(rec.Blob)
			if err != nil {
				return err
			}
			blob, err := toDB.protect(payload)
			if err != nil {
				return err
			}
			rec.Blob = blob
			moved[i].row = encodeRecord(rec)
		}
		cr := moved[i]
		if err := toDB.data.Insert(cr.key, cr.row); err != nil {
			return fmt.Errorf("compliance: merge: insert %q: %w", cr.key, err)
		}
		unit := core.UnitID(cr.key)
		if cr.hasPolicies {
			subject := core.EntityID(metaSubject(cr.row))
			if err := toDB.policies.AttachPolicies(unit, subject, cr.policies); err != nil {
				return err
			}
		} else if err := toDB.attachRecoveredPolicies(unit, rec.Meta, nil); err != nil {
			return err
		}
		if toDB.modelDB != nil {
			payload, err := toDB.unprotect(rec.Blob)
			if err != nil {
				return err
			}
			created := core.Time(rec.Meta.CreatedAt)
			u := core.NewDataUnit(unit, core.KindBase, core.EntityID(rec.Meta.Subject), "merged")
			u.SetValue(payload, created)
			for _, p := range cr.policies {
				_ = u.Grant(p, created)
			}
			_ = toDB.modelDB.Add(u)
		}
		movedKeys = append(movedKeys, string(cr.key))
	}
	toDB.personalBytes += movedPersonal
	toDB.metaBytes += movedMeta
	s.fireHook(s.hooks.afterReplay, nil)

	// Stage the post-merge directory: redirect from's slot to to, and
	// repoint any override that named from directly.
	s.dirMu.RLock()
	next := s.subjects.clone()
	s.dirMu.RUnlock()
	next.epoch++
	if next.redirects == nil {
		next.redirects = make(map[uint32]uint32, 1)
	}
	next.redirects[uint32(from)] = uint32(to)
	for name, idx := range next.overrides {
		if idx == uint32(from) {
			next.overrides[name] = uint32(to)
		}
	}
	nextBlob := encodeDirectory(next)

	// COMMIT: to's checkpoint embeds the post-merge directory. Not
	// truncated — the RecDirectory fallback and the copy inserts must
	// survive a torn checkpoint for recovery to classify the merge as
	// never-happened.
	toDB.dirSnapshot = func() []byte { return nextBlob }
	toDB.flushAudit()
	toDB.data.Log().Checkpoint(encodeCheckpointState(toDB))
	toDB.counters.checkpoints.Add(1)
	toDB.walBytesAtCheckpoint = toDB.data.Log().SizeBytes()
	s.fireHook(s.hooks.beforeFlip, nil)

	// FLIP.
	s.dirMu.Lock()
	s.subjects = next
	for _, k := range movedKeys {
		s.dir[k] = uint32(to)
	}
	s.dirMu.Unlock()
	toDB.dirSnapshot = s.dirBlob
	fencePolicies(fromDB)
	fencePolicies(toDB)

	// Retire from: physically delete everything (idempotent RecDeletes;
	// onDelete must not run — the directory entries point at to now).
	for _, cr := range moved {
		if err := fromDB.data.Delete(cr.key); err != nil {
			continue
		}
		if pg, ok := fromDB.data.(storage.Purger); ok {
			pg.RegisterPurge(cr.key)
		}
		unit := core.UnitID(cr.key)
		fromDB.policies.RevokePolicies(unit)
		if fromDB.modelDB != nil {
			fromDB.modelDB.Remove(unit)
		}
	}
	fromDB.personalBytes -= movedPersonal
	fromDB.metaBytes -= movedMeta
	if fromDB.loads != nil {
		fromDB.loads = newLoadTracker()
	}
	fromDB.noteClockLocked(true)
	toDB.logOp(core.HistoryTuple{
		Unit:    core.UnitID(fmt.Sprintf("reshard:merge:%d", to)),
		Purpose: PurposeService, Entity: EntitySystem,
		Action: core.Action{Kind: core.ActionWriteMetadata, SystemAction: "SHARD MERGE"},
		At:     toDB.clock.Tick(),
	}, "SHARD MERGE",
		[]byte(fmt.Sprintf("epoch %d: shard %d (%d records) -> shard %d",
			next.epoch, from, len(moved), to)), "", nil)
	s.fireHook(s.hooks.afterFlip, nil)
	return nil
}
