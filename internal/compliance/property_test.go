package compliance

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacase/datacase/internal/gdprbench"
)

// refRecord is the reference model's view of one record.
type refRecord struct {
	payload  []byte
	objected bool
}

// TestDBAgainstReferenceProperty drives random operation sequences
// against every profile and a trivial reference map, checking that data
// reads, deletes and objections agree. This is the end-to-end
// workhorse: it exercises policy engines, loggers, crypto, vacuum paths
// and erasure cascades together.
func TestDBAgainstReferenceProperty(t *testing.T) {
	// The three paper profiles on the heap backend, plus each on the
	// LSM backend with a small memtable — decision equivalence must
	// hold whatever the storage engine.
	profiles := Profiles()
	for _, p := range Profiles() {
		p.Backend = BackendLSM
		p.LSMFlushEntries = 16
		profiles = append(profiles, p)
	}
	f := func(seed int64, profileIdx uint8) bool {
		p := profiles[int(profileIdx)%len(profiles)]
		db, err := Open(p)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		ref := make(map[string]*refRecord)
		keyOf := func(i int) string { return fmt.Sprintf("user%08d", i) }
		nextKey := 0
		for op := 0; op < 400; op++ {
			switch r.Intn(10) {
			case 0, 1, 2: // create
				key := keyOf(nextKey)
				nextKey++
				rec := gdprbench.Record{
					Key: key, Subject: fmt.Sprintf("person-%d", nextKey%7),
					Payload:  []byte(fmt.Sprintf("payload-%d", op)),
					Purposes: []string{"billing", "analytics"}, TTL: 1 << 40,
					Processors: []string{"processor-a"},
				}
				if err := db.Create(rec); err != nil {
					return false
				}
				ref[key] = &refRecord{payload: rec.Payload}
			case 3, 4: // read
				if nextKey == 0 {
					continue
				}
				key := keyOf(r.Intn(nextKey))
				got, err := db.ReadData(EntityController, PurposeService, key)
				want, live := ref[key]
				if live != (err == nil) {
					return false
				}
				if live && !bytes.Equal(got, want.payload) {
					return false
				}
			case 5: // update
				if nextKey == 0 {
					continue
				}
				key := keyOf(r.Intn(nextKey))
				newPayload := []byte(fmt.Sprintf("updated-%d", op))
				err := db.UpdateData(EntityController, PurposeService, key, newPayload)
				if rec, live := ref[key]; live {
					if err != nil {
						return false
					}
					rec.payload = newPayload
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 6: // delete (right to erasure)
				if nextKey == 0 {
					continue
				}
				key := keyOf(r.Intn(nextKey))
				err := db.DeleteData(EntitySubjectSvc, key)
				if _, live := ref[key]; live {
					if err != nil {
						return false
					}
					delete(ref, key)
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 7: // objection
				if nextKey == 0 {
					continue
				}
				key := keyOf(r.Intn(nextKey))
				err := db.Object(key)
				if rec, live := ref[key]; live {
					if err != nil {
						return false
					}
					rec.objected = true
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 8: // meta read agrees on the objection flag
				if nextKey == 0 {
					continue
				}
				key := keyOf(r.Intn(nextKey))
				meta, err := db.ReadMeta(EntitySubjectSvc, PurposeSubjectAccess, key)
				if rec, live := ref[key]; live {
					if err != nil || meta.Objected != rec.objected {
						return false
					}
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			case 9: // consistency sweep
				if db.Len() != len(ref) {
					return false
				}
			}
		}
		return db.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestSubjectAccessMatchesReferenceProperty: a SAR returns exactly the
// live records of the subject.
func TestSubjectAccessMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		db, err := Open(PSYS())
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		bySubject := make(map[string]map[string]bool)
		for i := 0; i < 60; i++ {
			subject := fmt.Sprintf("person-%d", r.Intn(5))
			key := fmt.Sprintf("user%08d", i)
			rec := gdprbench.Record{
				Key: key, Subject: subject,
				Payload:  []byte("p"),
				Purposes: []string{"billing"}, TTL: 1 << 40,
				Processors: []string{"processor-a"},
			}
			if err := db.Create(rec); err != nil {
				return false
			}
			if bySubject[subject] == nil {
				bySubject[subject] = make(map[string]bool)
			}
			bySubject[subject][key] = true
		}
		// Erase a random half of one subject's records.
		for subject, keys := range bySubject {
			for key := range keys {
				if r.Intn(2) == 0 {
					if err := db.DeleteData(EntitySubjectSvc, key); err != nil {
						return false
					}
					delete(keys, key)
				}
			}
			got, err := db.SubjectAccess(subject)
			if err != nil {
				return false
			}
			if len(got) != len(keys) {
				return false
			}
			for _, g := range got {
				if !keys[g.Key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
