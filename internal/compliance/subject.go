package compliance

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/policy"
	"github.com/datacase/datacase/internal/wal"
)

// This file implements the data-subject rights of Figure 1's Storage
// category on top of the profiles: access (G15), portability (G20),
// consent withdrawal (G7(3)) and objection (G21). Each right is an
// ordinary policy-checked, logged operation — rights are data
// processing too.

// SubjectRecord is one record returned by a subject-access request.
type SubjectRecord struct {
	Key     string   `json:"key"`
	Meta    Metadata `json:"metadata"`
	Payload []byte   `json:"payload"`
}

// SubjectAccess answers a subject-access request (GDPR Art. 15): every
// record whose data subject matches, with metadata and (decrypted)
// payload. The lookup is a table scan — subjects are not the primary
// key — and each returned record is individually policy-checked.
func (db *DB) SubjectAccess(subject string) ([]SubjectRecord, error) {
	// Subject access is a read: it runs under the shared lock, so a
	// burst of Art.-15 requests does not serialize the shard.
	defer db.rlock()()
	return db.subjectAccessLocked(subject)
}

func (db *DB) subjectAccessLocked(subject string) ([]SubjectRecord, error) {
	now := db.clock.Tick()
	want := []byte(subject)
	type hit struct {
		key []byte
		row []byte
	}
	var hits []hit
	db.data.SeqScan(func(k, v []byte) bool {
		if bytes.Equal(metaSubject(v), want) {
			hits = append(hits, hit{
				key: append([]byte(nil), k...),
				row: append([]byte(nil), v...),
			})
		}
		return true
	})
	var out []SubjectRecord
	for _, h := range hits {
		unit := core.UnitID(h.key)
		d := db.policies.Allow(policy.Request{
			Unit: unit, Subject: core.EntityID(subject),
			Entity: EntitySubjectSvc, Purpose: PurposeSubjectAccess,
			Action: core.ActionRead, At: now,
		})
		if !d.Allowed {
			db.counters.denials.Add(1)
			continue
		}
		rec, err := decodeRecord(h.row)
		if err != nil {
			return nil, err
		}
		payload, err := db.unprotect(rec.Blob)
		if err != nil {
			return nil, err
		}
		out = append(out, SubjectRecord{Key: string(h.key), Meta: rec.Meta, Payload: payload})
		tuple := core.HistoryTuple{
			Unit: unit, Purpose: PurposeSubjectAccess, Entity: EntitySubjectSvc,
			Action: core.Action{Kind: core.ActionRead, SystemAction: "SAR"}, At: now,
		}
		if db.history != nil {
			db.history.MustAppend(tuple)
		}
	}
	db.logOp(core.HistoryTuple{
		Unit: core.UnitID("sar:" + subject), Purpose: PurposeSubjectAccess,
		Entity: EntitySubjectSvc,
		Action: core.Action{Kind: core.ActionRead, SystemAction: "SAR", RequiredByRegulation: true},
		At:     now,
	}, "SUBJECT ACCESS REQUEST", []byte(fmt.Sprintf("%d records", len(out))), "", nil)
	return out, nil
}

// ExportPortable implements data portability (GDPR Art. 20): the
// subject's records in a structured, machine-readable format.
func (db *DB) ExportPortable(subject string) ([]byte, error) {
	defer db.rlock()()
	return db.exportPortableLocked(subject)
}

// exportPortableLocked is ExportPortable's body; caller holds the
// read-path lock.
func (db *DB) exportPortableLocked(subject string) ([]byte, error) {
	recs, err := db.subjectAccessLocked(subject)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(struct {
		Subject string          `json:"subject"`
		Records []SubjectRecord `json:"records"`
	}{Subject: subject, Records: recs}, "", "  ")
}

// EraseSubject exercises the right to erasure at subject granularity
// (GDPR Art. 17 for a whole account): every record whose data subject
// matches is erased under the profile's grounding, atomically — the
// scan and the erasures happen under one lock acquisition, so a record
// collected concurrently either predates the request (and is erased)
// or postdates it entirely. It returns how many records were erased
// directly (cascaded dependents are counted in
// Counters().CascadeDeletes, as elsewhere).
func (db *DB) EraseSubject(entity core.EntityID, subject string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eraseSubjectLocked(entity, subject)
}

// eraseSubjectLocked is EraseSubject's body; caller holds mu. The
// sharded facade calls it after validating the subject's routing under
// this shard's lock, so an erase racing a split always runs against
// the shard that actually holds the subject's records.
func (db *DB) eraseSubjectLocked(entity core.EntityID, subject string) (int, error) {
	want := []byte(subject)
	var keys []string
	db.data.SeqScan(func(k, v []byte) bool {
		if bytes.Equal(metaSubject(v), want) {
			keys = append(keys, string(k))
		}
		return true
	})
	if len(keys) > 0 {
		// Durable erase intent, logged before the first physical delete:
		// if a crash interrupts the loop below, recovery replays this
		// record and finishes the erasure idempotently instead of
		// resurrecting the subject's remaining records (§3.2: "deleted
		// means deleted" must survive failure).
		db.data.Log().Append(wal.RecErase, want, encodeEraseIntent(keys))
	}
	// The periodic checkpointer must not fire between these deletes: a
	// snapshot of a half-erased subject would truncate the intent above,
	// and a crash right after it would resurrect the remaining records.
	// Defer the checkpoint (and the deletes' forced clock note) until
	// the cascade is complete.
	db.suppressCheckpoints = true
	defer func() {
		db.suppressCheckpoints = false
		db.noteClockLocked(true)
		db.checkpointIfDueLocked()
	}()
	erased := 0
	for _, k := range keys {
		if err := db.deleteDataLocked(entity, k); err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // removed by a cascade earlier in this request
			}
			return erased, err
		}
		erased++
	}
	return erased, nil
}

// RevokeConsent withdraws the subject's consent for one (purpose,
// entity) pair on a record (GDPR Art. 7(3): withdrawal must be as easy
// as granting). Later processing under that pair is denied and the
// withdrawal itself is recorded.
func (db *DB) RevokeConsent(key string, purpose core.Purpose, entity core.EntityID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.revokeConsentLocked(key, purpose, entity)
}

// revokeConsentLocked is RevokeConsent's body; caller holds mu.
func (db *DB) revokeConsentLocked(key string, purpose core.Purpose, entity core.EntityID) error {
	now := db.clock.Tick()
	if _, ok := db.data.Get([]byte(key)); !ok {
		db.counters.notFound.Add(1)
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	unit := core.UnitID(key)
	removed := db.policies.RevokePolicy(unit, purpose, entity)
	// Consent changes mutate no heap row, so they get their own logical
	// WAL record; without it a crash would resurrect the revoked grant
	// when recovery re-derives the unit's policies.
	db.data.Log().Append(wal.RecConsent, []byte(key), encodeConsentRevocation(purpose, entity))
	db.noteClockLocked(true)
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: purpose, Entity: EntitySubjectSvc,
		Action: core.Action{
			Kind:                 core.ActionConsent,
			SystemAction:         fmt.Sprintf("REVOKE (%d policies)", removed),
			RequiredByRegulation: true,
		},
		At: now,
	}
	db.logOp(tuple, "REVOKE CONSENT", nil, unit, nil)
	if db.modelDB != nil {
		if u, ok := db.modelDB.Lookup(unit); ok {
			u.Revoke(purpose, entity, now)
		}
		db.history.MustAppend(tuple)
	}
	return nil
}

// Object records the subject's objection to processing (GDPR Art. 21):
// the record is flagged and the processor's processing consent is
// withdrawn, so further processing reads are denied.
func (db *DB) Object(key string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.objectLocked(key)
}

// objectLocked is Object's body; caller holds mu.
func (db *DB) objectLocked(key string) error {
	now := db.clock.Tick()
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	rec, err := decodeRecord(row)
	if err != nil {
		return err
	}
	if !rec.Meta.Objected {
		rec.Meta.Objected = true
		if err := db.data.Update([]byte(key), encodeRecord(rec)); err != nil {
			return err
		}
	}
	unit := core.UnitID(key)
	db.policies.RevokePolicy(unit, PurposeProcessing, EntityProcessor)
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: PurposeSubjectAccess, Entity: EntitySubjectSvc,
		Action: core.Action{
			Kind: core.ActionWriteMetadata, SystemAction: "OBJECT",
			RequiredByRegulation: true,
		},
		At: now,
	}
	db.logOp(tuple, "OBJECT TO PROCESSING", nil, unit, nil)
	if db.modelDB != nil {
		if u, ok := db.modelDB.Lookup(unit); ok {
			u.Revoke(PurposeProcessing, EntityProcessor, now)
		}
		db.history.MustAppend(tuple)
	}
	db.counters.metaUpdates.Add(1)
	db.afterMutation()
	return nil
}
