package compliance

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"github.com/datacase/datacase/internal/core"
)

// subjectRightsContract runs the subject-rights behaviour shared by all
// profiles.
func subjectRightsContract(t *testing.T, mk func(t *testing.T) *DB) {
	t.Helper()

	t.Run("subject_access_returns_all_records", func(t *testing.T) {
		db := mk(t)
		// Two records for person-7, one for person-8.
		for i, rec := range []struct {
			key     string
			subject string
		}{
			{"rec-a", "person-7"}, {"rec-b", "person-7"}, {"rec-c", "person-8"},
		} {
			r := testRecord(i)
			r.Key, r.Subject = rec.key, rec.subject
			if err := db.Create(r); err != nil {
				t.Fatal(err)
			}
		}
		got, err := db.SubjectAccess("person-7")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("SAR returned %d records, want 2", len(got))
		}
		for _, r := range got {
			if r.Meta.Subject != "person-7" || len(r.Payload) == 0 {
				t.Fatalf("bad SAR record: %+v", r)
			}
		}
		if got, _ := db.SubjectAccess("person-ghost"); len(got) != 0 {
			t.Fatalf("SAR for unknown subject returned %d records", len(got))
		}
	})

	t.Run("portability_export_is_json", func(t *testing.T) {
		db := mk(t)
		r := testRecord(1)
		r.Subject = "person-7"
		if err := db.Create(r); err != nil {
			t.Fatal(err)
		}
		blob, err := db.ExportPortable("person-7")
		if err != nil {
			t.Fatal(err)
		}
		var parsed struct {
			Subject string          `json:"subject"`
			Records []SubjectRecord `json:"records"`
		}
		if err := json.Unmarshal(blob, &parsed); err != nil {
			t.Fatalf("export is not valid JSON: %v", err)
		}
		if parsed.Subject != "person-7" || len(parsed.Records) != 1 {
			t.Fatalf("export = %+v", parsed)
		}
		if !bytes.Equal(parsed.Records[0].Payload, r.Payload) {
			t.Fatal("payload lost in export")
		}
	})

	t.Run("objection_blocks_processing", func(t *testing.T) {
		db := mk(t)
		r := testRecord(1)
		if err := db.Create(r); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityProcessor, PurposeProcessing, r.Key); err != nil {
			t.Fatalf("pre-objection processing read failed: %v", err)
		}
		if err := db.Object(r.Key); err != nil {
			t.Fatal(err)
		}
		meta, err := db.ReadMeta(EntitySubjectSvc, PurposeSubjectAccess, r.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Objected {
			t.Fatal("objection flag not set")
		}
		if err := db.Object(r.Key); err != nil {
			t.Fatalf("double objection: %v", err)
		}
		if err := db.Object("ghost"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("objection on missing record: %v", err)
		}
	})
}

func TestSubjectRightsPBase(t *testing.T) {
	subjectRightsContract(t, func(t *testing.T) *DB { return openProfile(t, PBase(), false) })
}

func TestSubjectRightsPGBench(t *testing.T) {
	subjectRightsContract(t, func(t *testing.T) *DB { return openProfile(t, PGBench(), false) })
}

func TestSubjectRightsPSYS(t *testing.T) {
	subjectRightsContract(t, func(t *testing.T) *DB { return openProfile(t, PSYS(), false) })
}

func TestObjectionDeniesProcessorFineGrained(t *testing.T) {
	// Fine-grained engines enforce objection per record; RBAC cannot
	// (role-level coarseness) — the grounding difference made visible.
	for _, p := range []Profile{PGBench(), PSYS()} {
		db := openProfile(t, p, false)
		a, b := testRecord(1), testRecord(2)
		if err := db.Create(a); err != nil {
			t.Fatal(err)
		}
		if err := db.Create(b); err != nil {
			t.Fatal(err)
		}
		if err := db.Object(a.Key); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityProcessor, PurposeProcessing, a.Key); !errors.Is(err, ErrDenied) {
			t.Fatalf("%s: processing after objection not denied: %v", p.Name, err)
		}
		if _, err := db.ReadData(EntityProcessor, PurposeProcessing, b.Key); err != nil {
			t.Fatalf("%s: objection leaked to another record: %v", p.Name, err)
		}
	}
}

func TestRevokeConsent(t *testing.T) {
	for _, p := range []Profile{PGBench(), PSYS()} {
		db := openProfile(t, p, true)
		r := testRecord(1)
		if err := db.Create(r); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityController, PurposeService, r.Key); err != nil {
			t.Fatal(err)
		}
		if err := db.RevokeConsent(r.Key, PurposeService, EntityController); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityController, PurposeService, r.Key); !errors.Is(err, ErrDenied) {
			t.Fatalf("%s: read after consent withdrawal not denied: %v", p.Name, err)
		}
		// The withdrawal is policy-consistent history (required by
		// regulation): the audit stays clean except for the denial-free
		// trace.
		rep, err := db.Audit(core.DefaultGDPRInvariants())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Compliant() {
			t.Fatalf("%s: consent withdrawal broke compliance:\n%s", p.Name, rep)
		}
		if err := db.RevokeConsent("ghost", PurposeService, EntityController); !errors.Is(err, ErrNotFound) {
			t.Fatalf("revoke on missing record: %v", err)
		}
	}
}

func TestDeriveBasics(t *testing.T) {
	db := openProfile(t, PBase(), true)
	a, b := testRecord(1), testRecord(2)
	a.Subject, b.Subject = "person-7", "person-7"
	if err := db.Create(a); err != nil {
		t.Fatal(err)
	}
	if err := db.Create(b); err != nil {
		t.Fatal(err)
	}
	concat := func(parents [][]byte) []byte { return bytes.Join(parents, []byte("+")) }
	err := db.Derive(EntityController, PurposeService, "derived-1",
		[]string{a.Key, b.Key}, concat, true, "concat")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.ReadData(EntityController, PurposeService, "derived-1")
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Join([][]byte{a.Payload, b.Payload}, []byte("+"))
	if !bytes.Equal(got, want) {
		t.Fatalf("derived payload = %q, want %q", got, want)
	}
	// Provenance is recorded.
	d, ok := db.Provenance().DerivationOf("derived-1")
	if !ok || len(d.Parents) != 2 || !d.Invertible {
		t.Fatalf("derivation = %+v, %v", d, ok)
	}
	// Derived metadata: same subject, intersected purposes, min TTL.
	meta, err := db.ReadMeta(EntitySubjectSvc, PurposeSubjectAccess, "derived-1")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Subject != "person-7" {
		t.Fatalf("derived subject = %q", meta.Subject)
	}
	// Model mirror has a derived unit.
	model, _ := db.Model()
	u, ok := model.Lookup("derived-1")
	if !ok || u.Kind() != core.KindDerived {
		t.Fatalf("model derived unit missing or wrong kind")
	}
}

func TestDeriveValidation(t *testing.T) {
	db := openProfile(t, PBase(), false)
	id := func(parents [][]byte) []byte { return parents[0] }
	if err := db.Derive(EntityController, PurposeService, "d", nil, id, false, "x"); err == nil {
		t.Fatal("derivation without parents accepted")
	}
	if err := db.Derive(EntityController, PurposeService, "d", []string{"ghost"}, id, false, "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing parent: %v", err)
	}
	r := testRecord(1)
	if err := db.Create(r); err != nil {
		t.Fatal(err)
	}
	if err := db.Derive(EntityController, "never-consented", "d", []string{r.Key}, id, false, "x"); !errors.Is(err, ErrDenied) {
		t.Fatalf("unauthorized derivation: %v", err)
	}
}

func TestStrongDeleteCascadesToIdentifiableDependents(t *testing.T) {
	db := openProfile(t, PSYS(), true)
	base := testRecord(1)
	base.Subject = "person-7"
	other := testRecord(2)
	other.Subject = "person-8"
	if err := db.Create(base); err != nil {
		t.Fatal(err)
	}
	if err := db.Create(other); err != nil {
		t.Fatal(err)
	}
	first := func(parents [][]byte) []byte { return parents[0] }
	// Identifiable dependent (same subject).
	if err := db.Derive(EntityController, PurposeService, "profile-7",
		[]string{base.Key}, first, true, "projection"); err != nil {
		t.Fatal(err)
	}
	// Aggregate over two subjects: not identifiable.
	if err := db.Derive(EntityController, PurposeService, "cohort",
		[]string{base.Key, other.Key},
		func(parents [][]byte) []byte { return []byte("agg") }, false, "cohort"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteData(EntitySubjectSvc, base.Key); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadData(EntityController, PurposeService, "profile-7"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("identifiable dependent survived strong delete: %v", err)
	}
	if _, err := db.ReadData(EntityController, PurposeService, "cohort"); err != nil {
		t.Fatalf("aggregate wrongly cascaded: %v", err)
	}
	if db.Counters().CascadeDeletes != 1 {
		t.Fatalf("CascadeDeletes = %d", db.Counters().CascadeDeletes)
	}
	// The dependent's log entries are erased too (P_SYS grounding);
	// only its erase record survives.
	h, err := db.Logger().ReconstructHistory()
	if err != nil {
		t.Fatal(err)
	}
	tuples := h.Of("profile-7")
	if len(tuples) != 1 || tuples[0].Action.Kind != core.ActionErase {
		t.Fatalf("dependent log entries = %v", tuples)
	}
}

func TestPlainDeleteDoesNotCascade(t *testing.T) {
	db := openProfile(t, PBase(), false)
	base := testRecord(1)
	base.Subject = "person-7"
	if err := db.Create(base); err != nil {
		t.Fatal(err)
	}
	first := func(parents [][]byte) []byte { return parents[0] }
	if err := db.Derive(EntityController, PurposeService, "profile-7",
		[]string{base.Key}, first, true, "projection"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteData(EntitySubjectSvc, base.Key); err != nil {
		t.Fatal(err)
	}
	// P_Base's grounding is plain deletion: the derived record stays —
	// the measurable II hazard of Table 1.
	if _, err := db.ReadData(EntityController, PurposeService, "profile-7"); err != nil {
		t.Fatalf("P_Base cascade should not happen: %v", err)
	}
	if db.Counters().CascadeDeletes != 0 {
		t.Fatalf("CascadeDeletes = %d", db.Counters().CascadeDeletes)
	}
}

func TestSubjectAccessAfterErasure(t *testing.T) {
	db := openProfile(t, PSYS(), false)
	r := testRecord(1)
	r.Subject = "person-7"
	if err := db.Create(r); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteData(EntitySubjectSvc, r.Key); err != nil {
		t.Fatal(err)
	}
	got, err := db.SubjectAccess("person-7")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("SAR after erasure returned %d records", len(got))
	}
}

func TestWorldRegulationTaxonomies(t *testing.T) {
	for _, reg := range core.Regulations() {
		if reg.Len() == 0 {
			t.Errorf("%s has no articles", reg.Name)
		}
		for _, a := range reg.Articles() {
			if !a.Category.Valid() || a.Title == "" {
				t.Errorf("%s article %d malformed: %+v", reg.Name, a.Number, a)
			}
		}
	}
	ccpa := core.CCPA()
	if got := ccpa.InCategory(core.CatErasure); len(got) != 1 || got[0].Number != 105 {
		t.Fatalf("CCPA erasure articles = %v", got)
	}
	pipeda := core.PIPEDA()
	if got := pipeda.InCategory(core.CatErasure); len(got) != 1 || got[0].Number != 5 {
		t.Fatalf("PIPEDA retention articles = %v", got)
	}
}

func TestSARIsLoggedAsRequiredAction(t *testing.T) {
	db := openProfile(t, PBase(), false)
	r := testRecord(1)
	r.Subject = "person-7"
	if err := db.Create(r); err != nil {
		t.Fatal(err)
	}
	before := db.Logger().Count()
	if _, err := db.SubjectAccess("person-7"); err != nil {
		t.Fatal(err)
	}
	if db.Logger().Count() <= before {
		t.Fatal("SAR not logged")
	}
}

func TestDeriveChainCascade(t *testing.T) {
	// base -> d1 -> d2 (all same subject): strong delete of base removes
	// the whole chain.
	db := openProfile(t, PSYS(), false)
	base := testRecord(1)
	base.Subject = "person-7"
	if err := db.Create(base); err != nil {
		t.Fatal(err)
	}
	first := func(parents [][]byte) []byte { return parents[0] }
	if err := db.Derive(EntityController, PurposeService, "d1", []string{base.Key}, first, true, "p1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Derive(EntityController, PurposeService, "d2", []string{"d1"}, first, true, "p2"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteData(EntitySubjectSvc, base.Key); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"d1", "d2"} {
		if _, err := db.ReadData(EntityController, PurposeService, key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s survived chain cascade: %v", key, err)
		}
	}
	if db.Counters().CascadeDeletes != 2 {
		t.Fatalf("CascadeDeletes = %d", db.Counters().CascadeDeletes)
	}
}

var _ = fmt.Sprintf // reserved for debugging helpers
