package compliance

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/gdprbench"
)

func testRecord(i int) gdprbench.Record {
	return gdprbench.Record{
		Key:        gdprbench.KeyFor(i),
		Subject:    fmt.Sprintf("person-%05d", i),
		Payload:    []byte(fmt.Sprintf("dev-%05d|person-%05d|sensor-001|atrium|%d|42", i, i, i)),
		Purposes:   []string{"billing", "analytics"},
		TTL:        1 << 30,
		Processors: []string{"processor-a"},
	}
}

func openProfile(t *testing.T, p Profile, trackModel bool) *DB {
	t.Helper()
	p.TrackModel = trackModel
	db, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// profileContract exercises behaviour all three profiles must share.
func profileContract(t *testing.T, mk func(t *testing.T) *DB) {
	t.Helper()

	t.Run("create_read_roundtrip", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(1)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		got, err := db.ReadData(EntityController, PurposeService, rec.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rec.Payload) {
			t.Fatalf("read = %q, want %q", got, rec.Payload)
		}
	})

	t.Run("payload_never_plaintext_at_rest", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(2)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		// The heap row must not contain the plaintext payload: it is
		// sealed or lives encrypted on the block device.
		if db.data.ForensicScan(rec.Payload) {
			t.Fatal("plaintext payload at rest in heap pages")
		}
	})

	t.Run("denied_wrong_purpose", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(3)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		_, err := db.ReadData(EntityController, "never-consented", rec.Key)
		if !errors.Is(err, ErrDenied) {
			t.Fatalf("err = %v, want ErrDenied", err)
		}
		if db.Counters().Denials != 1 {
			t.Fatalf("Denials = %d", db.Counters().Denials)
		}
	})

	t.Run("processor_access", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(4)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityProcessor, PurposeProcessing, rec.Key); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("update_data", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(5)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		if err := db.UpdateData(EntityController, PurposeService, rec.Key, []byte("new-payload")); err != nil {
			t.Fatal(err)
		}
		got, err := db.ReadData(EntityController, PurposeService, rec.Key)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "new-payload" {
			t.Fatalf("read = %q", got)
		}
	})

	t.Run("delete_then_not_found", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(6)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		if err := db.DeleteData(EntitySubjectSvc, rec.Key); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityController, PurposeService, rec.Key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("read after delete err = %v", err)
		}
		if err := db.DeleteData(EntitySubjectSvc, rec.Key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("double delete err = %v", err)
		}
	})

	t.Run("meta_read_and_update", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(7)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		meta, err := db.ReadMeta(EntitySubjectSvc, PurposeSubjectAccess, rec.Key)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Subject != rec.Subject || len(meta.Purposes) != 2 {
			t.Fatalf("meta = %+v", meta)
		}
		if err := db.UpdateMeta(EntitySubjectSvc, PurposeSubjectAccess, rec.Key, "research", 999); err != nil {
			t.Fatal(err)
		}
		meta, err = db.ReadMeta(EntitySubjectSvc, PurposeSubjectAccess, rec.Key)
		if err != nil {
			t.Fatal(err)
		}
		if meta.TTL != 999 || !hasString(meta.Purposes, "research") {
			t.Fatalf("meta after update = %+v", meta)
		}
		// The new consent is enforceable.
		if _, err := db.ReadData(EntityController, "research", rec.Key); err != nil {
			t.Fatalf("newly consented purpose denied: %v", err)
		}
	})

	t.Run("read_by_meta", func(t *testing.T) {
		db := mk(t)
		for i := 10; i < 20; i++ {
			if err := db.Create(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		n, err := db.ReadByMeta(EntityProcessor, PurposeProcessing, "billing", 5)
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("ReadByMeta = %d rows, want 5 (limit)", n)
		}
		if n, err := db.ReadByMeta(EntityProcessor, PurposeProcessing, "no-such-purpose", 5); err != nil || n != 0 {
			t.Fatalf("phantom purpose matched %d rows, err=%v", n, err)
		}
	})

	t.Run("audit_log_grows", func(t *testing.T) {
		db := mk(t)
		rec := testRecord(30)
		if err := db.Create(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := db.ReadData(EntityController, PurposeService, rec.Key); err != nil {
			t.Fatal(err)
		}
		if db.Logger().Count() < 2 {
			t.Fatalf("log entries = %d, want >= 2", db.Logger().Count())
		}
	})
}

func TestPBaseContract(t *testing.T) {
	profileContract(t, func(t *testing.T) *DB { return openProfile(t, PBase(), false) })
}

func TestPGBenchContract(t *testing.T) {
	profileContract(t, func(t *testing.T) *DB { return openProfile(t, PGBench(), false) })
}

func TestPSYSContract(t *testing.T) {
	profileContract(t, func(t *testing.T) *DB { return openProfile(t, PSYS(), false) })
}

func TestPSYSLogErasureOnDelete(t *testing.T) {
	db := openProfile(t, PSYS(), false)
	rec := testRecord(1)
	if err := db.Create(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.ReadData(EntityController, PurposeService, rec.Key); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DeleteData(EntitySubjectSvc, rec.Key); err != nil {
		t.Fatal(err)
	}
	// Only the erase record survives for the unit.
	h, err := db.Logger().ReconstructHistory()
	if err != nil {
		t.Fatal(err)
	}
	tuples := h.Of(core.UnitID(rec.Key))
	if len(tuples) != 1 || tuples[0].Action.Kind != core.ActionErase {
		t.Fatalf("surviving tuples = %v", tuples)
	}
}

func TestPBaseKeepsLogsOnDelete(t *testing.T) {
	db := openProfile(t, PBase(), false)
	rec := testRecord(1)
	if err := db.Create(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadData(EntityController, PurposeService, rec.Key); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteData(EntitySubjectSvc, rec.Key); err != nil {
		t.Fatal(err)
	}
	h, err := db.Logger().ReconstructHistory()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Of(core.UnitID(rec.Key))); got != 3 {
		t.Fatalf("P_Base should retain all %d entries, got %d", 3, got)
	}
}

func TestVacuumStyles(t *testing.T) {
	// Drive enough delete churn to trigger the autovacuum policy and
	// observe each profile's grounding.
	run := func(t *testing.T, p Profile) Counters {
		db := openProfile(t, p, false)
		const n = 2000
		for i := 0; i < n; i++ {
			if err := db.Create(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			if err := db.DeleteData(EntitySubjectSvc, gdprbench.KeyFor(i)); err != nil {
				t.Fatal(err)
			}
		}
		return db.Counters()
	}
	if c := run(t, PBase()); c.Vacuums == 0 || c.VacuumFulls != 0 {
		t.Fatalf("P_Base counters = %+v, want lazy vacuums only", c)
	}
	if c := run(t, PGBench()); c.Vacuums != 0 || c.VacuumFulls != 0 {
		t.Fatalf("P_GBench counters = %+v, want no vacuums", c)
	}
	if c := run(t, PSYS()); c.VacuumFulls == 0 || c.Vacuums != 0 {
		t.Fatalf("P_SYS counters = %+v, want full vacuums only", c)
	}
}

func TestPGBenchRetainsDeletedPayloadOnDevice(t *testing.T) {
	// P_GBench's plain DELETE leaves the payload sector orphaned on the
	// encrypted device — physically retained (though key-protected).
	db := openProfile(t, PGBench(), false)
	rec := testRecord(1)
	if err := db.Create(rec); err != nil {
		t.Fatal(err)
	}
	sectors := db.blockdev.Sectors()
	if err := db.DeleteData(EntitySubjectSvc, rec.Key); err != nil {
		t.Fatal(err)
	}
	if db.blockdev.Sectors() != sectors {
		t.Fatal("delete should not reclaim device sectors (plain DELETE)")
	}
}

func TestSpaceReportOrdering(t *testing.T) {
	// Load the same dataset into the three profiles and compare space
	// factors: P_Base < P_GBench < P_SYS, with P_SYS far ahead (Table 2).
	const n = 1500
	factors := make(map[string]float64)
	for _, p := range Profiles() {
		db := openProfile(t, p, false)
		for i := 0; i < n; i++ {
			if err := db.Create(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		// A little traffic so logs have weight.
		for i := 0; i < n/2; i++ {
			if _, err := db.ReadData(EntityController, PurposeService, gdprbench.KeyFor(i)); err != nil {
				t.Fatal(err)
			}
		}
		rep := db.Space()
		if rep.PersonalBytes <= 0 || rep.TotalBytes <= rep.PersonalBytes {
			t.Fatalf("%s space report nonsense: %+v", p.Name, rep)
		}
		factors[p.Name] = rep.Factor
	}
	if !(factors["P_Base"] < factors["P_GBench"]) {
		t.Fatalf("factor ordering wrong: %+v", factors)
	}
	if !(factors["P_GBench"] < factors["P_SYS"]) {
		t.Fatalf("factor ordering wrong: %+v", factors)
	}
	if factors["P_SYS"] < 2*factors["P_GBench"] {
		t.Fatalf("P_SYS should dominate (Table 2's 17x vs 3.7x): %+v", factors)
	}
}

func TestAuditCompliantRun(t *testing.T) {
	db := openProfile(t, PBase(), true)
	for i := 0; i < 50; i++ {
		if err := db.Create(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := db.ReadData(EntityController, PurposeService, gdprbench.KeyFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.Audit(core.DefaultGDPRInvariants())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant() {
		t.Fatalf("compliant run reported violations:\n%s", rep)
	}
}

func TestAuditCatchesDeadlineViolation(t *testing.T) {
	db := openProfile(t, PBase(), true)
	rec := testRecord(1)
	rec.TTL = 3 // expires almost immediately
	if err := db.Create(rec); err != nil {
		t.Fatal(err)
	}
	// Let the clock pass the deadline without erasing.
	for i := 0; i < 50; i++ {
		if _, err := db.ReadData(EntityController, PurposeService, rec.Key); err != nil {
			// Reads start failing once the policy window closes — keep
			// ticking the clock regardless.
			continue
		}
	}
	rep, err := db.Audit(core.DefaultGDPRInvariants())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant() {
		t.Fatal("missed erasure deadline not flagged")
	}
	foundG17 := false
	for _, v := range rep.Violations {
		if v.Invariant == "G17" && v.Unit == core.UnitID(rec.Key) {
			foundG17 = true
		}
	}
	if !foundG17 {
		t.Fatalf("no G17 violation in report:\n%s", rep)
	}
}

func TestAuditRequiresModel(t *testing.T) {
	db := openProfile(t, PBase(), false)
	if _, err := db.Audit(core.DefaultGDPRInvariants()); err == nil {
		t.Fatal("audit without model accepted")
	}
}

func TestGroundingsInspectable(t *testing.T) {
	for _, p := range Profiles() {
		g := p.Groundings()
		if ok, missing := g.FullyGrounded(); p.Name == "P_GBench" {
			// P_GBench's erasure maps to an unsupported action (the
			// orphaned device sector) — deliberately not fully grounded.
			if ok {
				t.Fatalf("%s should not be fully grounded", p.Name)
			}
		} else if !ok {
			t.Fatalf("%s not fully grounded: missing %v", p.Name, missing)
		}
		if _, ok := g.Chosen(core.ConceptErasure); !ok {
			t.Fatalf("%s has no erasure grounding", p.Name)
		}
		if _, ok := g.Chosen(core.ConceptPolicy); !ok {
			t.Fatalf("%s has no policy grounding", p.Name)
		}
		if _, ok := g.Chosen(core.ConceptHistory); !ok {
			t.Fatalf("%s has no history grounding", p.Name)
		}
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	r := storedRecord{
		Meta: Metadata{
			Subject:    "person-00042",
			Purposes:   []string{"billing", "analytics"},
			TTL:        12345,
			Processors: []string{"processor-a", "processor-b"},
			Objected:   true,
		},
		Blob: []byte{1, 2, 3, 4},
	}
	got, err := decodeRecord(encodeRecord(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Subject != r.Meta.Subject || got.Meta.TTL != r.Meta.TTL ||
		!got.Meta.Objected || len(got.Meta.Purposes) != 2 ||
		len(got.Meta.Processors) != 2 || !bytes.Equal(got.Blob, r.Blob) {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeRecord([]byte{0}); err == nil {
		t.Fatal("truncated record decoded")
	}
}

func TestMetaPredicatesOnEncodedRow(t *testing.T) {
	row := encodeRecord(storedRecord{
		Meta: Metadata{Subject: "person-7", Purposes: []string{"billing", "research"}, TTL: 1},
		Blob: []byte("blob"),
	})
	if !metaHasPurpose(row, "billing") || !metaHasPurpose(row, "research") {
		t.Fatal("purpose predicate missed")
	}
	if metaHasPurpose(row, "bill") || metaHasPurpose(row, "ads") {
		t.Fatal("purpose predicate false positive")
	}
	if string(metaSubject(row)) != "person-7" {
		t.Fatalf("metaSubject = %q", metaSubject(row))
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Profile{}); err == nil {
		t.Fatal("empty profile accepted")
	}
	p := PBase()
	p.VacuumThreshold = 2
	if _, err := Open(p); err == nil {
		t.Fatal("bad threshold accepted")
	}
}
