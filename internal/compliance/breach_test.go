package compliance

import (
	"testing"

	"github.com/datacase/datacase/internal/core"
)

func TestBreachLifecycleCompliant(t *testing.T) {
	db := openProfile(t, PBase(), true)
	if err := db.Create(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordBreach("incident-1", []string{testRecord(1).Key}); err != nil {
		t.Fatal(err)
	}
	if err := db.NotifyBreach("incident-1"); err != nil {
		t.Fatal(err)
	}
	rep, err := db.AuditWithBreaches(core.DefaultGDPRInvariants())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant() {
		t.Fatalf("notified breach flagged:\n%s", rep)
	}
}

func TestBreachUnnotifiedViolates(t *testing.T) {
	db := openProfile(t, PBase(), true)
	rec := testRecord(1)
	if err := db.Create(rec); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordBreach("incident-1", []string{rec.Key}); err != nil {
		t.Fatal(err)
	}
	// Let the logical clock pass the 72-tick window.
	for i := 0; i < 100; i++ {
		if _, err := db.ReadData(EntityController, PurposeService, rec.Key); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.AuditWithBreaches(core.DefaultGDPRInvariants())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant() {
		t.Fatal("unnotified breach not flagged")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Invariant == "G33" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no G33 violation:\n%s", rep)
	}
}

func TestBreachValidation(t *testing.T) {
	db := openProfile(t, PBase(), false)
	if err := db.RecordBreach("", nil); err == nil {
		t.Fatal("empty breach id accepted")
	}
	if err := db.NotifyBreach(""); err == nil {
		t.Fatal("empty breach id accepted")
	}
}

func TestBreachIsLogged(t *testing.T) {
	db := openProfile(t, PBase(), false)
	before := db.Logger().Count()
	if err := db.RecordBreach("incident-1", []string{"k1", "k2"}); err != nil {
		t.Fatal(err)
	}
	if db.Logger().Count() != before+1 {
		t.Fatal("breach detection not logged")
	}
}
