package compliance

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Metadata is the GDPR metadata block of a stored record. It stays
// queryable (plaintext) in the heap row — metadata must be scannable for
// subject-access and retention queries — while the personal-data payload
// is protected per the profile's at-rest grounding.
type Metadata struct {
	Subject    string
	Purposes   []string
	TTL        int64
	Processors []string
	Objected   bool
	// CreatedAt is the collection time (logical); CreatedAt + TTL is
	// the retention deadline the sweeper enforces (G17).
	CreatedAt int64
	// Consented lists purposes granted after collection (UpdateMeta),
	// each backed by a controller policy. Kept separate from Purposes
	// (which also holds the collection-time purposes that carry no
	// per-purpose policy) so crash recovery can re-grant exactly these
	// and nothing more.
	Consented []string
	// BaseTTL is the TTL at collection time. UpdateMeta overwrites TTL
	// (moving the retention deadline) but never extends the standard
	// consent bundle, whose windows end at CreatedAt+BaseTTL — recovery
	// rebuilds them from this, so a TTL extension cannot reopen an
	// already-expired consent window.
	BaseTTL int64
}

// storedRecord is the heap row: metadata block + protected payload blob
// (sealed bytes, or a block-device sector reference).
type storedRecord struct {
	Meta Metadata
	// Blob is the protected payload representation.
	Blob []byte
}

// encodeRecord lays out [metaLen u16][meta][blobLen u32][blob].
func encodeRecord(r storedRecord) []byte {
	meta := encodeMetadata(r.Meta)
	buf := make([]byte, 0, 2+len(meta)+4+len(r.Blob))
	var b4 [4]byte
	binary.BigEndian.PutUint16(b4[:2], uint16(len(meta)))
	buf = append(buf, b4[:2]...)
	buf = append(buf, meta...)
	binary.BigEndian.PutUint32(b4[:], uint32(len(r.Blob)))
	buf = append(buf, b4[:]...)
	buf = append(buf, r.Blob...)
	return buf
}

func decodeRecord(buf []byte) (storedRecord, error) {
	var r storedRecord
	if len(buf) < 2 {
		return r, fmt.Errorf("compliance: truncated record")
	}
	ml := int(binary.BigEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < ml+4 {
		return r, fmt.Errorf("compliance: truncated metadata")
	}
	meta, err := decodeMetadata(buf[:ml])
	if err != nil {
		return r, err
	}
	r.Meta = meta
	buf = buf[ml:]
	bl := int(binary.BigEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) != bl {
		return r, fmt.Errorf("compliance: blob length mismatch")
	}
	r.Blob = append([]byte(nil), buf...)
	return r, nil
}

// encodeMetadata renders a compact, scannable text form:
// subject|purposes,csv|ttl|processors,csv|objected|createdAt|consented,csv|baseTTL
func encodeMetadata(m Metadata) []byte {
	objected := "0"
	if m.Objected {
		objected = "1"
	}
	return []byte(strings.Join([]string{
		m.Subject,
		strings.Join(m.Purposes, ","),
		fmt.Sprintf("%d", m.TTL),
		strings.Join(m.Processors, ","),
		objected,
		fmt.Sprintf("%d", m.CreatedAt),
		strings.Join(m.Consented, ","),
		fmt.Sprintf("%d", m.BaseTTL),
	}, "|"))
}

func decodeMetadata(buf []byte) (Metadata, error) {
	parts := strings.Split(string(buf), "|")
	// 6 fields is the original layout (no post-collection grants, no
	// collection-time TTL).
	if len(parts) != 6 && len(parts) != 8 {
		return Metadata{}, fmt.Errorf("compliance: metadata has %d fields", len(parts))
	}
	var m Metadata
	m.Subject = parts[0]
	if parts[1] != "" {
		m.Purposes = strings.Split(parts[1], ",")
	}
	if _, err := fmt.Sscanf(parts[2], "%d", &m.TTL); err != nil {
		return Metadata{}, fmt.Errorf("compliance: bad TTL %q", parts[2])
	}
	if parts[3] != "" {
		m.Processors = strings.Split(parts[3], ",")
	}
	m.Objected = parts[4] == "1"
	if _, err := fmt.Sscanf(parts[5], "%d", &m.CreatedAt); err != nil {
		return Metadata{}, fmt.Errorf("compliance: bad CreatedAt %q", parts[5])
	}
	if len(parts) == 8 {
		if parts[6] != "" {
			m.Consented = strings.Split(parts[6], ",")
		}
		if _, err := fmt.Sscanf(parts[7], "%d", &m.BaseTTL); err != nil {
			return Metadata{}, fmt.Errorf("compliance: bad BaseTTL %q", parts[7])
		}
	} else {
		m.BaseTTL = m.TTL
	}
	return m, nil
}

// metaHasPurpose tests the purpose predicate directly on an encoded row
// without fully decoding it — the cheap scan path.
func metaHasPurpose(row []byte, purpose string) bool {
	if len(row) < 2 {
		return false
	}
	ml := int(binary.BigEndian.Uint16(row[:2]))
	if len(row) < 2+ml {
		return false
	}
	meta := row[2 : 2+ml]
	// Field 2 (0-indexed 1) is the purposes CSV.
	first := indexByte(meta, '|')
	if first < 0 {
		return false
	}
	second := indexByte(meta[first+1:], '|')
	if second < 0 {
		return false
	}
	purposes := meta[first+1 : first+1+second]
	return csvContains(purposes, purpose)
}

// metaSubject extracts the subject field from an encoded row without a
// full decode.
func metaSubject(row []byte) []byte {
	if len(row) < 2 {
		return nil
	}
	ml := int(binary.BigEndian.Uint16(row[:2]))
	if len(row) < 2+ml {
		return nil
	}
	meta := row[2 : 2+ml]
	i := indexByte(meta, '|')
	if i < 0 {
		return nil
	}
	return meta[:i]
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

func csvContains(csv []byte, item string) bool {
	for len(csv) > 0 {
		i := indexByte(csv, ',')
		var field []byte
		if i < 0 {
			field, csv = csv, nil
		} else {
			field, csv = csv[:i], csv[i+1:]
		}
		if string(field) == item {
			return true
		}
	}
	return false
}
