package compliance

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/datacase/datacase/internal/audit"
	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/cryptox"
	"github.com/datacase/datacase/internal/gdprbench"
	"github.com/datacase/datacase/internal/policy"
	"github.com/datacase/datacase/internal/provenance"
	"github.com/datacase/datacase/internal/storage"
	"github.com/datacase/datacase/internal/storage/lsm"
	"github.com/datacase/datacase/internal/wal"
)

// Well-known entities of a deployment.
const (
	EntityController core.EntityID = "controller"
	EntityProcessor  core.EntityID = "processor"
	EntitySubjectSvc core.EntityID = "subject-svc"
	EntitySystem     core.EntityID = "system"
)

// Purposes the deployment grounds beyond the record's own.
const (
	PurposeService       core.Purpose = "service"
	PurposeProcessing    core.Purpose = "processing"
	PurposeSubjectAccess core.Purpose = "subject-access"
)

// Operation errors.
var (
	// ErrNotFound: the record does not exist (or was erased).
	ErrNotFound = errors.New("compliance: record not found")
	// ErrDenied: the policy engine rejected the access.
	ErrDenied = errors.New("compliance: access denied")
)

// Counters is a snapshot of the DB-level work tally.
type Counters struct {
	Creates     uint64
	DataReads   uint64
	DataUpdates uint64
	Deletes     uint64
	MetaReads   uint64
	MetaUpdates uint64
	MetaScans   uint64
	Denials     uint64
	NotFound    uint64
	Vacuums     uint64
	VacuumFulls uint64
	// CascadeDeletes counts derived records strong-deleted because
	// their subject was identifiable after a parent's erasure.
	CascadeDeletes uint64
	// Checkpoints counts durable WAL checkpoints taken (periodic
	// checkpointer plus explicit Checkpoint calls), full images and
	// delta frames both.
	Checkpoints uint64
	// DeltaCheckpoints counts the subset of Checkpoints emitted as
	// incremental delta frames (IncrementalCheckpoints profiles).
	DeltaCheckpoints uint64
	// FullCheckpointBytes / DeltaCheckpointBytes total the payload bytes
	// of full images vs delta frames — the incremental checkpointer's
	// O(dirty) claim, measurable.
	FullCheckpointBytes  uint64
	DeltaCheckpointBytes uint64
}

// counterBlock is the live tally. Every field is atomic because the
// shared-lock read path bumps reads, denials and not-founds while
// holding mu only in read mode — concurrent readers must count
// race-free without write access.
type counterBlock struct {
	creates              atomic.Uint64
	dataReads            atomic.Uint64
	dataUpdates          atomic.Uint64
	deletes              atomic.Uint64
	metaReads            atomic.Uint64
	metaUpdates          atomic.Uint64
	metaScans            atomic.Uint64
	denials              atomic.Uint64
	notFound             atomic.Uint64
	vacuums              atomic.Uint64
	vacuumFulls          atomic.Uint64
	cascadeDeletes       atomic.Uint64
	checkpoints          atomic.Uint64
	deltaCheckpoints     atomic.Uint64
	fullCheckpointBytes  atomic.Uint64
	deltaCheckpointBytes atomic.Uint64
}

// snapshot copies the live tally into the exported shape.
func (c *counterBlock) snapshot() Counters {
	return Counters{
		Creates:              c.creates.Load(),
		DataReads:            c.dataReads.Load(),
		DataUpdates:          c.dataUpdates.Load(),
		Deletes:              c.deletes.Load(),
		MetaReads:            c.metaReads.Load(),
		MetaUpdates:          c.metaUpdates.Load(),
		MetaScans:            c.metaScans.Load(),
		Denials:              c.denials.Load(),
		NotFound:             c.notFound.Load(),
		Vacuums:              c.vacuums.Load(),
		VacuumFulls:          c.vacuumFulls.Load(),
		CascadeDeletes:       c.cascadeDeletes.Load(),
		Checkpoints:          c.checkpoints.Load(),
		DeltaCheckpoints:     c.deltaCheckpoints.Load(),
		FullCheckpointBytes:  c.fullCheckpointBytes.Load(),
		DeltaCheckpointBytes: c.deltaCheckpointBytes.Load(),
	}
}

// DB is one grounded deployment: a heap table of GDPR records plus the
// profile's policy engine, audit logger and at-rest protection. All
// operations are policy-checked and logged per the profile's grounding.
//
// Concurrency model (ARCHITECTURE.md §6): mu is a read/write lock.
// Mutations — creates, updates, deletes, consent changes, erase
// compounds, checkpointing, recovery replay — take it exclusively.
// The read path (ReadData, ReadMeta, ReadByMeta, SubjectAccess,
// Audit, Space) takes it shared, so policy-checked reads scale across
// cores: the structures a reader touches are each safe under the
// shared lock — the storage engine and policy engine are internally
// RWMutex-protected, the logical clock and op counters are atomic,
// model history appends are internally locked, and hot-path audit
// records go through the async sink. Readers never write any
// mu-guarded field. Profile.ExclusiveReads restores the old
// one-big-mutex behaviour as an experiment baseline.
type DB struct {
	profile Profile

	mu sync.RWMutex
	// clock is the deployment's logical clock; in a sharded deployment
	// every shard shares one clock, so deadline invariants (retention,
	// breach notification) advance with traffic anywhere, not just on
	// the shard holding the deadline.
	clock    *core.Clock
	data     storage.Engine
	policies policy.Engine
	logger   audit.Logger
	// asink is the async audit sink behind logger (nil when the profile
	// chose SyncAudit); hot-path read records enqueue here.
	asink    *audit.AsyncLogger
	sealer   cryptox.Sealer
	blockdev *cryptox.BlockDev
	prov     *provenance.Graph

	nextSector int

	// plaintext personal-data accounting for Table 2.
	personalBytes int64
	metaBytes     int64

	// model mirror (TrackModel).
	modelDB *core.Database
	history *core.History

	mutationsSinceCheck int
	counters            counterBlock

	// checkpointer state (guarded by mu): mutations and WAL growth since
	// the last durable checkpoint, for the ops-/bytes-triggered policy.
	opsSinceCheckpoint   int
	walBytesAtCheckpoint int64
	// suppressCheckpoints defers the periodic checkpointer while a
	// compound operation (EraseSubject's intent + delete loop) is in
	// flight: a snapshot taken mid-compound would capture a half-erased
	// subject and truncate the erase intent, so a crash right after it
	// would partially resurrect the subject. Delta frames are gated the
	// same way — a mid-compound delta would chain a half-erased subject
	// to the base image.
	suppressCheckpoints bool
	// incremental-checkpoint dirty tracking (guarded by mu; nil unless
	// the profile enables IncrementalCheckpoints). dirtyKeys holds keys
	// whose rows changed since the last checkpoint frame, deletedKeys
	// the keys deleted since then; the sets are kept disjoint, so a
	// delta frame is exactly one upsert or one delete per touched key.
	dirtyKeys   map[string]struct{}
	deletedKeys map[string]struct{}
	// deltasSinceFull counts delta frames chained to the current full
	// image; at FullCheckpointEvery the next checkpoint is forced full.
	deltasSinceFull int
	// mutationsSinceClockNote schedules the periodic RecClock notes.
	mutationsSinceClockNote int

	// onDelete, when set, is invoked (with mu held) for every record
	// physically removed from this DB, including dependent cascades. The
	// sharded facade uses it to keep its key directory exact.
	onDelete func(key string)

	// dirSnapshot, when set, returns the encoded key->shard directory in
	// force for the deployment this shard belongs to; checkpoints embed
	// it so recovery can adopt the topology (elastic resharding). Called
	// with mu held; implementations may take the directory lock (the
	// shard-then-directory order is the legal one).
	dirSnapshot func() []byte

	// loads tracks per-subject op counts when the profile enables
	// TrackSubjectLoad; the Rebalancer's split planner reads it to pick
	// which subjects to move off a hot shard.
	loads *loadTracker
}

// Open builds a DB for the profile. A nil Profile.PayloadKey is
// materialized with a fresh random key first (the KMS issuing the
// deployment its at-rest secret); read it back via Profile() — crash
// recovery needs it.
func Open(p Profile) (*DB, error) {
	if err := materializePayloadKey(&p); err != nil {
		return nil, err
	}
	return openNamed(p, p.Name+":data", &core.Clock{})
}

// materializePayloadKey draws the at-rest key for profiles that seal
// payloads and did not bring one.
func materializePayloadKey(p *Profile) error {
	if p.UseBlockDev || len(p.PayloadKey) > 0 {
		return nil
	}
	if err := p.validate(); err != nil {
		return err
	}
	key, err := cryptox.GenerateKey(p.PayloadCipher)
	if err != nil {
		return err
	}
	p.PayloadKey = key
	return nil
}

// openNamed builds a DB whose heap table (and therefore WAL segment)
// carries the given name, ticking the given clock. OpenSharded uses it
// to give every shard its own named table and log segment while all
// shards share one clock.
func openNamed(p Profile, tableName string, clock *core.Clock) (*DB, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	logger, err := p.NewLogger()
	if err != nil {
		return nil, err
	}
	log := wal.New()
	if p.SerialWAL {
		log = wal.NewSerial()
	}
	if p.WALSyncStall > 0 {
		log.SetSyncDelay(p.WALSyncStall)
	}
	data, err := newEngine(p, tableName, log)
	if err != nil {
		return nil, err
	}
	policies := p.NewPolicyEngine()
	if !p.NoDecisionCache {
		policies = policy.NewCached(policies, p.DecisionCacheEntries)
	}
	db := &DB{
		profile:  p,
		clock:    clock,
		data:     data,
		policies: policies,
		logger:   logger,
		prov:     provenance.NewGraph(),
	}
	if !p.SyncAudit {
		db.asink = audit.NewAsync(logger, p.AuditQueueDepth)
		db.logger = db.asink
	}
	if p.UseBlockDev {
		// 96-byte sectors: enough for the mall payloads without the
		// device dominating the space accounting.
		dev, err := cryptox.NewBlockDev([]byte(p.Name+"-disk-passphrase"), 96)
		if err != nil {
			return nil, err
		}
		db.blockdev = dev
	} else {
		// The at-rest key is the profile's KMS-held secret
		// (Profile.PayloadKey, materialized by Open/OpenSharded): it
		// survives a crash while process memory does not, so recovery —
		// given the crashed deployment's materialized profile — builds
		// the same sealer and the blobs replayed from the WAL stay
		// readable. It is never derivable from public profile data; a
		// stolen segment image alone stays ciphertext.
		if len(p.PayloadKey) == 0 {
			return nil, fmt.Errorf("compliance: profile %s has no materialized payload key", p.Name)
		}
		sealer, err := cryptox.NewAESGCM(p.PayloadKey, nil)
		if err != nil {
			return nil, err
		}
		db.sealer = sealer
	}
	if p.TrackModel {
		db.modelDB = core.NewDatabase()
		db.history = core.NewHistory()
	}
	if p.TrackSubjectLoad {
		db.loads = newLoadTracker()
	}
	if p.IncrementalCheckpoints {
		db.dirtyKeys = make(map[string]struct{})
		db.deletedKeys = make(map[string]struct{})
	}
	return db, nil
}

// newEngine builds the profile's storage backend for one data table.
func newEngine(p Profile, tableName string, log *wal.Log) (storage.Engine, error) {
	switch p.Backend {
	case "", BackendHeap:
		return storage.NewHeap(tableName, log), nil
	case BackendLSM:
		return storage.NewLSM(tableName, log, lsm.Options{
			PurgeWithinOps:       p.PurgeWithinOps,
			MemtableFlushEntries: p.LSMFlushEntries,
		}), nil
	case BackendMmap:
		return storage.NewMmap(tableName, log), nil
	default:
		// validate rejects unknown backends before this runs; keep the
		// error anyway for callers constructing engines directly.
		return nil, fmt.Errorf("compliance: unknown storage backend %q", p.Backend)
	}
}

// Profile returns the profile the DB was opened with.
func (db *DB) Profile() Profile { return db.profile }

// Engine exposes the deployment's storage engine (tests, reports and
// backend-specific statistics such as purge-obligation counters).
func (db *DB) Engine() storage.Engine { return db.data }

// Counters returns a snapshot of the op counters. The fields are
// atomics, so the snapshot needs no lock and never blocks behind the
// write path.
func (db *DB) Counters() Counters { return db.counters.snapshot() }

// noteSubjectLoad records one op against the subject's load tally
// (no-op unless the profile enables TrackSubjectLoad). The tracker has
// its own mutex, so the shared-lock read path may call it too.
func (db *DB) noteSubjectLoad(subject string) {
	if db.loads != nil {
		db.loads.bump(subject)
	}
}

// rlock acquires the read-path lock: shared by default, exclusive when
// the profile chose the ExclusiveReads baseline. It returns the
// matching unlock.
func (db *DB) rlock() func() {
	if db.profile.ExclusiveReads {
		db.mu.Lock()
		return db.mu.Unlock
	}
	db.mu.RLock()
	return db.mu.RUnlock
}

// flushAudit forces every queued async audit record into the inner
// logger (no-op for SyncAudit profiles). Called at the points where the
// log must be complete: audits, checkpoints, close.
func (db *DB) flushAudit() {
	if db.asink != nil {
		// Drain errors are logger failures, which this in-memory stack
		// treats as programming errors (see logOp).
		if err := db.asink.Flush(); err != nil {
			panic(err)
		}
	}
}

// Close flushes the async audit sink and stops its drainer. The DB
// remains usable — later hot-path records degrade to synchronous
// logging — so Close is about goroutine hygiene, not lifecycle
// enforcement.
func (db *DB) Close() error {
	if db.asink != nil {
		return db.asink.Close()
	}
	return nil
}

// Len returns the number of live records.
func (db *DB) Len() int { return db.data.Len() }

// WALStats returns the commit-work counters of the deployment's
// write-ahead log.
func (db *DB) WALStats() wal.Stats { return db.data.Log().Stats() }

// SegmentImage returns the durable byte image of the deployment's WAL
// segment — what a crash would leave on disk. RecoverDB rebuilds a
// deployment from it.
func (db *DB) SegmentImage() []byte { return db.data.Log().SegmentBytes() }

// WALLen returns the number of live records in the deployment's WAL
// segment (benchmarks report it as the log length at crash time).
func (db *DB) WALLen() int { return db.data.Log().Len() }

// Checkpoint takes a durable WAL checkpoint now: the full consistent
// state is snapshotted into a RecCheckpoint record and the log is
// truncated up to it, bounding both recovery time and log growth. The
// periodic checkpointer calls the same path on the profile's ops/bytes
// triggers.
func (db *DB) Checkpoint() wal.LSN {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// maybeCheckpointLocked runs the profile's checkpoint policy after a
// mutation. Caller holds mu.
func (db *DB) maybeCheckpointLocked() {
	if db.profile.CheckpointEveryOps <= 0 && db.profile.CheckpointEveryBytes <= 0 {
		return
	}
	db.opsSinceCheckpoint++
	db.checkpointIfDueLocked()
}

// checkpointIfDueLocked takes a checkpoint when a trigger has fired and
// no compound operation is suppressing it. Caller holds mu.
func (db *DB) checkpointIfDueLocked() {
	if db.suppressCheckpoints {
		return
	}
	everyOps, everyBytes := db.profile.CheckpointEveryOps, db.profile.CheckpointEveryBytes
	if everyOps <= 0 && everyBytes <= 0 {
		return
	}
	trigger := everyOps > 0 && db.opsSinceCheckpoint >= everyOps
	if !trigger && everyBytes > 0 {
		trigger = db.data.Log().SizeBytes()-db.walBytesAtCheckpoint >= everyBytes
	}
	if trigger {
		db.checkpointLocked()
	}
}

// checkpointLocked snapshots the DB state into the WAL. Caller holds
// mu. The async audit queue flushes first, so the log is complete up to
// every state a checkpoint can be taken at.
//
// With IncrementalCheckpoints, the snapshot is a delta frame — only the
// rows dirtied (and keys deleted) since the last frame, chained to the
// last full image — unless no full image exists yet or the chain has
// reached FullCheckpointEvery deltas, in which case a full image is
// forced. Only full images move the WAL's truncation floor: a delta's
// base image and every record after it must stay replayable, so the
// PR 3 truncation clamp keeps protecting them unchanged.
func (db *DB) checkpointLocked() wal.LSN {
	db.flushAudit()
	log := db.data.Log()
	if db.incrementalDueLocked() {
		payload := encodeCheckpointDelta(db)
		lsn := log.Append(wal.RecCheckpointDelta, nil, payload)
		db.counters.checkpoints.Add(1)
		db.counters.deltaCheckpoints.Add(1)
		db.counters.deltaCheckpointBytes.Add(uint64(len(payload)))
		db.deltasSinceFull++
		db.resetDirtyLocked()
		db.opsSinceCheckpoint = 0
		db.mutationsSinceClockNote = 0 // the frame carries the clock
		db.walBytesAtCheckpoint = log.SizeBytes()
		return lsn
	}
	payload := encodeCheckpointState(db)
	lsn := log.Checkpoint(payload)
	log.Truncate(lsn - 1)
	if rb, ok := db.data.(storage.RegionBacked); ok {
		// The engine's half of a region checkpoint: snapshot the page
		// table and reset the (fully applied) embedded redo log — the
		// msync-analogue, O(dirty pages) with no row serialization.
		rb.CheckpointRegion()
	}
	db.counters.checkpoints.Add(1)
	db.counters.fullCheckpointBytes.Add(uint64(len(payload)))
	db.deltasSinceFull = 0
	db.resetDirtyLocked()
	db.opsSinceCheckpoint = 0
	db.mutationsSinceClockNote = 0 // the snapshot carries the clock
	db.walBytesAtCheckpoint = log.SizeBytes()
	return lsn
}

// incrementalDueLocked reports whether the next checkpoint should be a
// delta frame: the profile opted in, a full image exists to chain to,
// and the chain is still under the full-image cadence. Caller holds mu.
func (db *DB) incrementalDueLocked() bool {
	if !db.profile.IncrementalCheckpoints {
		return false
	}
	if _, ok := db.data.(storage.RegionBacked); ok {
		// Region engines never write delta frames: their full
		// checkpoint is already row-free and O(1)-sized, so a delta
		// would cost more than the image it avoids.
		return false
	}
	if _, ok := db.data.Log().LastCheckpoint(); !ok {
		return false
	}
	every := db.profile.FullCheckpointEvery
	if every <= 0 {
		every = DefaultFullCheckpointEvery
	}
	return db.deltasSinceFull < every
}

// resetDirtyLocked clears the dirty sets after a checkpoint frame
// captured them. Caller holds mu.
func (db *DB) resetDirtyLocked() {
	if db.dirtyKeys == nil {
		return
	}
	clear(db.dirtyKeys)
	clear(db.deletedKeys)
}

// noteDirtyLocked records that key's row changed since the last
// checkpoint frame (no-op unless IncrementalCheckpoints). Caller holds
// mu.
func (db *DB) noteDirtyLocked(key string) {
	if db.dirtyKeys == nil {
		return
	}
	delete(db.deletedKeys, key)
	db.dirtyKeys[key] = struct{}{}
}

// noteDeletedLocked records that key was deleted since the last
// checkpoint frame (no-op unless IncrementalCheckpoints). Caller holds
// mu.
func (db *DB) noteDeletedLocked(key string) {
	if db.dirtyKeys == nil {
		return
	}
	delete(db.dirtyKeys, key)
	db.deletedKeys[key] = struct{}{}
}

// clockNoteEvery bounds how far the logical clock can regress across a
// crash on a mutation-heavy stream: at most this many ticks pass
// between durable RecClock notes. (A read-only window before a crash
// can still lose its ticks — reads write nothing — which recovery
// documents as its residual clock exposure.)
const clockNoteEvery = 64

// noteClockLocked appends a RecClock record carrying the clock's
// current value, every clockNoteEvery mutations — or immediately when
// forced, which the compliance-critical mutations (deletes, erasures,
// consent withdrawals) do so that the tick that made them lawful can
// never be lost. Caller holds mu.
func (db *DB) noteClockLocked(force bool) {
	db.mutationsSinceClockNote++
	if !force && db.mutationsSinceClockNote < clockNoteEvery {
		return
	}
	db.mutationsSinceClockNote = 0
	db.data.Log().Append(wal.RecClock, nil, encodeClockNote(db.clock.Now()))
}

// Model returns the model mirror (nil unless TrackModel).
func (db *DB) Model() (*core.Database, *core.History) { return db.modelDB, db.history }

// Logger exposes the audit logger (reports, tests).
func (db *DB) Logger() audit.Logger { return db.logger }

// PolicyEngine exposes the policy engine (reports, tests).
func (db *DB) PolicyEngine() policy.Engine { return db.policies }

// ioStall models the device access a real deployment would wait on
// (Profile.IOStall; 0 disables). It runs on the payload path only —
// exactly where a disk-backed system would block — so concurrency
// experiments can observe lock-granularity effects: under the shared
// read lock the stalls of concurrent readers overlap, under
// ExclusiveReads they serialize.
func (db *DB) ioStall() {
	if db.profile.IOStall > 0 {
		time.Sleep(db.profile.IOStall)
	}
}

// protect converts a plaintext payload into the stored blob.
func (db *DB) protect(payload []byte) ([]byte, error) {
	db.ioStall()
	if db.blockdev != nil {
		sector := db.nextSector
		db.nextSector++
		if err := db.blockdev.WriteSector(sector, payload); err != nil {
			return nil, err
		}
		blob := make([]byte, 8)
		binary.BigEndian.PutUint32(blob[:4], uint32(sector))
		binary.BigEndian.PutUint32(blob[4:], uint32(len(payload)))
		return blob, nil
	}
	return db.sealer.Seal(payload)
}

// unprotect recovers the plaintext payload from a stored blob.
func (db *DB) unprotect(blob []byte) ([]byte, error) {
	db.ioStall()
	if db.blockdev != nil {
		if len(blob) != 8 {
			return nil, fmt.Errorf("compliance: bad sector reference")
		}
		sector := int(binary.BigEndian.Uint32(blob[:4]))
		n := int(binary.BigEndian.Uint32(blob[4:]))
		buf, err := db.blockdev.ReadSector(sector)
		if err != nil {
			return nil, err
		}
		if n > len(buf) {
			return nil, fmt.Errorf("compliance: sector shorter than payload")
		}
		return buf[:n], nil
	}
	return db.sealer.Open(blob)
}

// Create collects a new record with consent: stores it protected,
// attaches the consented policies, and logs the collection.
func (db *DB) Create(rec gdprbench.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.createLocked(rec)
}

// createLocked is Create's body; caller holds mu. The sharded facade
// calls it after validating the subject's routing under this shard's
// lock, so a concurrent split cannot strand the new record on a shard
// the directory no longer points at.
func (db *DB) createLocked(rec gdprbench.Record) error {
	now := db.clock.Tick()
	meta := Metadata{
		Subject:    rec.Subject,
		Purposes:   rec.Purposes,
		TTL:        rec.TTL,
		Processors: rec.Processors,
		Objected:   rec.Objected,
		CreatedAt:  int64(now),
		BaseTTL:    rec.TTL,
	}
	blob, err := db.protect(rec.Payload)
	if err != nil {
		return err
	}
	row := encodeRecord(storedRecord{Meta: meta, Blob: blob})
	if err := db.data.Insert([]byte(rec.Key), row); err != nil {
		return err
	}
	db.personalBytes += int64(len(rec.Payload))
	db.metaBytes += int64(len(row) - len(blob))
	unit := core.UnitID(rec.Key)
	subject := core.EntityID(rec.Subject)
	deadline := core.Time(int64(now) + rec.TTL)
	pols := recordPolicies(rec, now, deadline)
	if err := db.policies.AttachPolicies(unit, subject, pols); err != nil {
		return err
	}
	db.logOp(core.HistoryTuple{
		Unit: unit, Purpose: PurposeService, Entity: EntityController,
		Action: core.Action{Kind: core.ActionCreate, SystemAction: "INSERT"}, At: now,
	}, "INSERT INTO data", row, unit, nil)
	if db.modelDB != nil {
		u := core.NewDataUnit(unit, core.KindBase, subject, "collection")
		u.SetValue(rec.Payload, now)
		for _, p := range pols {
			// Grant only fails on malformed policies; ours are built here.
			_ = u.Grant(p, now)
		}
		// Duplicate keys were rejected by Insert above.
		_ = db.modelDB.Add(u)
		db.history.MustAppend(core.HistoryTuple{
			Unit: unit, Purpose: "consent", Entity: subject,
			Action: core.Action{Kind: core.ActionConsent, RequiredByRegulation: true}, At: now,
		})
		db.history.MustAppend(core.HistoryTuple{
			Unit: unit, Purpose: PurposeService, Entity: EntityController,
			Action: core.Action{Kind: core.ActionCreate, SystemAction: "INSERT"}, At: now,
		})
	}
	db.counters.creates.Add(1)
	db.noteDirtyLocked(rec.Key)
	db.noteSubjectLoad(rec.Subject)
	db.noteClockLocked(false)
	db.maybeCheckpointLocked()
	return nil
}

// CreateBatch collects N records under one lock acquisition. See
// createBatchLocked for the amortization contract.
func (db *DB) CreateBatch(recs []gdprbench.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.createBatchLocked(recs)
}

// createBatchLocked admits a whole batch of new records with the
// per-batch costs paid once instead of per record: one clock tick (the
// batch is one collection event), one policy-bundle adjudication per
// distinct TTL (the bundle depends only on (now, deadline); the engine
// still attaches it per unit, inside one epoch-bracketed mutation
// each), one cipher setup (the sealer is resident; payloads seal
// back-to-back without per-record lock traffic), one engine-lock
// acquisition and one WAL group submission for all N inserts
// (storage.BatchInserter), and one clock-note/checkpoint-policy pass.
//
// Admission is all-or-nothing at the storage boundary: every row is
// encoded and sealed before the engine sees any of them, and the
// engine's InsertBatch rejects the whole batch on a duplicate key, so a
// failed batch leaves no partial state. Per-record audit entries are
// still written — demonstrable accountability is per operation, and
// batching may not thin the trail. Caller holds mu.
func (db *DB) createBatchLocked(recs []gdprbench.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if len(recs) == 1 {
		return db.createLocked(recs[0])
	}
	now := db.clock.Tick()
	keys := make([][]byte, len(recs))
	rows := make([][]byte, len(recs))
	blobLens := make([]int, len(recs))
	var personal, meta int64
	for i, rec := range recs {
		blob, err := db.protect(rec.Payload)
		if err != nil {
			return err
		}
		row := encodeRecord(storedRecord{Meta: Metadata{
			Subject:    rec.Subject,
			Purposes:   rec.Purposes,
			TTL:        rec.TTL,
			Processors: rec.Processors,
			Objected:   rec.Objected,
			CreatedAt:  int64(now),
			BaseTTL:    rec.TTL,
		}, Blob: blob})
		keys[i], rows[i], blobLens[i] = []byte(rec.Key), row, len(blob)
		personal += int64(len(rec.Payload))
		meta += int64(len(row) - len(blob))
	}
	if err := db.insertRows(keys, rows); err != nil {
		return err
	}
	db.personalBytes += personal
	db.metaBytes += meta
	// recordPolicies depends only on (now, deadline), and now is shared
	// by the batch: adjudicate one bundle per distinct TTL and attach it
	// to every record that consented under that TTL.
	bundles := make(map[int64][]core.Policy)
	for i, rec := range recs {
		pols, ok := bundles[rec.TTL]
		if !ok {
			pols = recordPolicies(rec, now, core.Time(int64(now)+rec.TTL))
			bundles[rec.TTL] = pols
		}
		unit := core.UnitID(rec.Key)
		subject := core.EntityID(rec.Subject)
		if err := db.policies.AttachPolicies(unit, subject, pols); err != nil {
			return err
		}
		db.logOp(core.HistoryTuple{
			Unit: unit, Purpose: PurposeService, Entity: EntityController,
			Action: core.Action{Kind: core.ActionCreate, SystemAction: "INSERT"}, At: now,
		}, "INSERT INTO data (batch)", rows[i], unit, nil)
		if db.modelDB != nil {
			u := core.NewDataUnit(unit, core.KindBase, subject, "collection")
			u.SetValue(rec.Payload, now)
			for _, p := range pols {
				_ = u.Grant(p, now)
			}
			_ = db.modelDB.Add(u)
			db.history.MustAppend(core.HistoryTuple{
				Unit: unit, Purpose: "consent", Entity: subject,
				Action: core.Action{Kind: core.ActionConsent, RequiredByRegulation: true}, At: now,
			})
			db.history.MustAppend(core.HistoryTuple{
				Unit: unit, Purpose: PurposeService, Entity: EntityController,
				Action: core.Action{Kind: core.ActionCreate, SystemAction: "INSERT"}, At: now,
			})
		}
		db.noteDirtyLocked(rec.Key)
		db.noteSubjectLoad(rec.Subject)
	}
	db.counters.creates.Add(uint64(len(recs)))
	db.noteClockLocked(false)
	if db.profile.CheckpointEveryOps > 0 || db.profile.CheckpointEveryBytes > 0 {
		db.opsSinceCheckpoint += len(recs)
		db.checkpointIfDueLocked()
	}
	return nil
}

// insertRows admits the encoded batch into the storage engine: through
// the BatchInserter capability when the engine has one (both built-ins
// do — one engine lock, one WAL group submission), otherwise per-record
// Insert with rollback of the prefix on failure, preserving the
// all-or-nothing contract.
func (db *DB) insertRows(keys, rows [][]byte) error {
	if bi, ok := db.data.(storage.BatchInserter); ok {
		return bi.InsertBatch(keys, rows)
	}
	for i := range keys {
		if err := db.data.Insert(keys[i], rows[i]); err != nil {
			for j := 0; j < i; j++ {
				_ = db.data.Delete(keys[j])
			}
			return err
		}
	}
	return nil
}

// recordPolicies derives the consented policy set of a record: the
// controller operates the service, the processor processes, the
// subject-access path serves data-subject rights, and the system must
// erase by the TTL deadline. The record's own purposes stay in its
// metadata (they drive metadata queries); consent to them is subsumed
// under the service policy, as GDPRBench's schema does.
func recordPolicies(rec gdprbench.Record, now, deadline core.Time) []core.Policy {
	return []core.Policy{
		{Purpose: PurposeService, Entity: EntityController, Begin: now, End: deadline},
		{Purpose: PurposeProcessing, Entity: EntityProcessor, Begin: now, End: deadline},
		{Purpose: PurposeSubjectAccess, Entity: EntitySubjectSvc, Begin: now, End: deadline},
		{Purpose: core.PurposeComplianceErase, Entity: EntitySystem, Begin: now, End: deadline},
	}
}

// ReadData reads a record's personal data by key. It runs under the
// shared lock: the engine Get, the policy check (decision cache
// included), the decrypt and the audit record are all safe for
// concurrent readers, so reads scale instead of queueing behind one
// mutex.
func (db *DB) ReadData(entity core.EntityID, purpose core.Purpose, key string) ([]byte, error) {
	defer db.rlock()()
	return db.readDataLocked(entity, purpose, key)
}

// readDataLocked is ReadData's body; caller holds the read-path lock.
func (db *DB) readDataLocked(entity core.EntityID, purpose core.Purpose, key string) ([]byte, error) {
	now := db.clock.Tick()
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	unit := core.UnitID(key)
	d := db.policies.Allow(policy.Request{
		Unit: unit, Subject: core.EntityID(metaSubject(row)),
		Entity: entity, Purpose: purpose, Action: core.ActionRead, At: now,
	})
	if !d.Allowed {
		db.counters.denials.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrDenied, d.Reason)
	}
	rec, err := decodeRecord(row)
	if err != nil {
		return nil, err
	}
	payload, err := db.unprotect(rec.Blob)
	if err != nil {
		return nil, err
	}
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: purpose, Entity: entity,
		Action: core.Action{Kind: core.ActionRead, SystemAction: "SELECT"}, At: now,
	}
	db.logRead(tuple, "SELECT data", payload, unit, &d)
	if db.history != nil {
		db.history.MustAppend(tuple)
	}
	db.counters.dataReads.Add(1)
	db.noteSubjectLoad(string(metaSubject(row)))
	return payload, nil
}

// UpdateData overwrites a record's personal data.
func (db *DB) UpdateData(entity core.EntityID, purpose core.Purpose, key string, payload []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.updateDataLocked(entity, purpose, key, payload)
}

// updateDataLocked is UpdateData's body; caller holds mu.
func (db *DB) updateDataLocked(entity core.EntityID, purpose core.Purpose, key string, payload []byte) error {
	now := db.clock.Tick()
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	unit := core.UnitID(key)
	d := db.policies.Allow(policy.Request{
		Unit: unit, Subject: core.EntityID(metaSubject(row)),
		Entity: entity, Purpose: purpose, Action: core.ActionWrite, At: now,
	})
	if !d.Allowed {
		db.counters.denials.Add(1)
		return fmt.Errorf("%w: %s", ErrDenied, d.Reason)
	}
	rec, err := decodeRecord(row)
	if err != nil {
		return err
	}
	oldPayload, err := db.unprotect(rec.Blob)
	if err != nil {
		return err
	}
	blob, err := db.protect(payload)
	if err != nil {
		return err
	}
	rec.Blob = blob
	if err := db.data.Update([]byte(key), encodeRecord(rec)); err != nil {
		return err
	}
	db.personalBytes += int64(len(payload)) - int64(len(oldPayload))
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: purpose, Entity: entity,
		Action: core.Action{Kind: core.ActionWrite, SystemAction: "UPDATE"}, At: now,
	}
	db.logOp(tuple, "UPDATE data", payload, unit, &d)
	if db.modelDB != nil {
		if u, ok := db.modelDB.Lookup(unit); ok {
			u.SetValue(payload, now)
		}
		db.history.MustAppend(tuple)
	}
	db.counters.dataUpdates.Add(1)
	db.noteDirtyLocked(key)
	db.noteSubjectLoad(string(metaSubject(row)))
	db.afterMutation()
	return nil
}

// DeleteData erases a record per the profile's erasure grounding. The
// action is required by regulation (right to erasure / retention
// expiry), so it needs no authorizing policy, but it must be recorded.
func (db *DB) DeleteData(entity core.EntityID, key string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.deleteDataLocked(entity, key)
}

// deleteDataLocked is DeleteData's body; caller holds mu (EraseSubject
// erases a whole subject under one lock acquisition).
func (db *DB) deleteDataLocked(entity core.EntityID, key string) error {
	now := db.clock.Tick()
	// The subject is needed for the strong grounding's cascade; read it
	// before the row disappears.
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	subject := append([]byte(nil), metaSubject(row)...)
	if db.profile.CascadeDependents {
		// A strong delete with dependents is a multi-record compound:
		// log the full key set as a durable erase intent before the
		// first physical delete, so a crash between the parent's and a
		// dependent's delete frames recovers to the finished cascade
		// instead of leaving identifiable derived records alive.
		if deps := db.cascadeTargets(core.UnitID(key), subject); len(deps) > 0 {
			db.data.Log().Append(wal.RecErase, subject,
				encodeEraseIntent(append([]string{key}, deps...)))
		}
	}
	if err := db.data.Delete([]byte(key)); err != nil {
		db.counters.notFound.Add(1)
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	// On purge-capable backends (LSM), a regulation-mandated delete is
	// not done with the tombstone: register the obligation that bounds
	// how long the shadowed versions may stay physically resident.
	if pg, ok := db.data.(storage.Purger); ok {
		pg.RegisterPurge([]byte(key))
	}
	if db.onDelete != nil {
		db.onDelete(key)
	}
	unit := core.UnitID(key)
	db.policies.RevokePolicies(unit)
	sysAction := db.deleteSysAction()
	if db.profile.EraseLogsOnDelete {
		// Erase log entries of the unit first, then log the erasure
		// itself — the surviving record demonstrates compliance.
		// Loggers used by erase-capable profiles support EraseUnit.
		_, _ = db.logger.EraseUnit(unit)
	}
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: core.PurposeComplianceErase, Entity: entity,
		Action: core.Action{Kind: core.ActionErase, SystemAction: sysAction, RequiredByRegulation: true},
		At:     now,
	}
	db.logOp(tuple, "DELETE FROM data", nil, unit, nil)
	if db.modelDB != nil {
		if u, ok := db.modelDB.Lookup(unit); ok {
			u.RevokeAllPolicies(now)
			u.MarkErased(now)
		}
		db.history.MustAppend(tuple)
	}
	db.counters.deletes.Add(1)
	db.noteDeletedLocked(key)
	db.noteSubjectLoad(string(subject))
	// The strong-delete grounding cascades to derived records in which
	// the subject remains identifiable (§3.1's strong deletion).
	if db.profile.CascadeDependents {
		db.cascadeDependents(unit, subject, entity, now)
	}
	// Forced clock note: the tick that made this erasure due (e.g. a
	// passed retention deadline) must survive the crash with it. Inside
	// an EraseSubject compound the note is deferred to the compound's
	// end (suppressCheckpoints doubles as the in-compound marker), so a
	// K-record erasure pays one note, not K.
	if !db.suppressCheckpoints {
		db.noteClockLocked(true)
	}
	db.afterMutation()
	return nil
}

// ReadMeta answers a keyed metadata query for one record (the customer
// workload's "reads of metadata": a subject inspecting their own
// record's policies and TTL). Shared-lock read path, like ReadData.
func (db *DB) ReadMeta(entity core.EntityID, purpose core.Purpose, key string) (Metadata, error) {
	defer db.rlock()()
	return db.readMetaLocked(entity, purpose, key)
}

// readMetaLocked is ReadMeta's body; caller holds the read-path lock.
func (db *DB) readMetaLocked(entity core.EntityID, purpose core.Purpose, key string) (Metadata, error) {
	now := db.clock.Tick()
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return Metadata{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	unit := core.UnitID(key)
	d := db.policies.Allow(policy.Request{
		Unit: unit, Subject: core.EntityID(metaSubject(row)),
		Entity: entity, Purpose: purpose, Action: core.ActionReadMetadata, At: now,
	})
	if !d.Allowed {
		db.counters.denials.Add(1)
		return Metadata{}, fmt.Errorf("%w: %s", ErrDenied, d.Reason)
	}
	rec, err := decodeRecord(row)
	if err != nil {
		return Metadata{}, err
	}
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: purpose, Entity: entity,
		Action: core.Action{Kind: core.ActionReadMetadata, SystemAction: "SELECT meta"}, At: now,
	}
	db.logRead(tuple, "SELECT meta", encodeMetadata(rec.Meta), unit, &d)
	if db.history != nil {
		db.history.MustAppend(tuple)
	}
	db.counters.metaReads.Add(1)
	db.noteSubjectLoad(rec.Meta.Subject)
	return rec.Meta, nil
}

// UpdateMeta changes a record's metadata: sets a new TTL and consents to
// an additional purpose.
func (db *DB) UpdateMeta(entity core.EntityID, purpose core.Purpose, key, newPurpose string, newTTL int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.updateMetaLocked(entity, purpose, key, newPurpose, newTTL)
}

// updateMetaLocked is UpdateMeta's body; caller holds mu.
func (db *DB) updateMetaLocked(entity core.EntityID, purpose core.Purpose, key, newPurpose string, newTTL int64) error {
	now := db.clock.Tick()
	row, ok := db.data.Get([]byte(key))
	if !ok {
		db.counters.notFound.Add(1)
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	unit := core.UnitID(key)
	subject := core.EntityID(metaSubject(row))
	d := db.policies.Allow(policy.Request{
		Unit: unit, Subject: subject,
		Entity: entity, Purpose: purpose, Action: core.ActionWriteMetadata, At: now,
	})
	if !d.Allowed {
		db.counters.denials.Add(1)
		return fmt.Errorf("%w: %s", ErrDenied, d.Reason)
	}
	rec, err := decodeRecord(row)
	if err != nil {
		return err
	}
	oldLen := int64(len(row) - len(rec.Blob))
	rec.Meta.TTL = newTTL
	if newPurpose != "" && !hasString(rec.Meta.Purposes, newPurpose) {
		rec.Meta.Purposes = append(rec.Meta.Purposes, newPurpose)
	}
	if newPurpose != "" && !hasString(rec.Meta.Consented, newPurpose) {
		// Recorded in the row so crash recovery can re-grant exactly the
		// post-collection consents (the policy attached below would
		// otherwise exist only in engine memory for engines that cannot
		// enumerate their policies).
		rec.Meta.Consented = append(rec.Meta.Consented, newPurpose)
	}
	newRow := encodeRecord(rec)
	if err := db.data.Update([]byte(key), newRow); err != nil {
		return err
	}
	db.metaBytes += int64(len(newRow)-len(rec.Blob)) - oldLen
	if newPurpose != "" {
		p := core.Policy{
			Purpose: core.Purpose(newPurpose), Entity: EntityController,
			Begin: now, End: core.Time(int64(now) + newTTL),
		}
		if err := db.policies.AttachPolicy(unit, subject, p); err != nil {
			return err
		}
		if db.modelDB != nil {
			if u, ok := db.modelDB.Lookup(unit); ok {
				_ = u.Grant(p, now)
			}
		}
	}
	tuple := core.HistoryTuple{
		Unit: unit, Purpose: purpose, Entity: entity,
		Action: core.Action{Kind: core.ActionWriteMetadata, SystemAction: "UPDATE meta"}, At: now,
	}
	db.logOp(tuple, "UPDATE meta", encodeMetadata(rec.Meta), unit, &d)
	if db.history != nil {
		db.history.MustAppend(tuple)
	}
	db.counters.metaUpdates.Add(1)
	db.noteDirtyLocked(key)
	db.afterMutation()
	return nil
}

// ReadByMeta reads data using metadata: scan for records collected for
// the purpose and read up to limit of them (policy-checked and
// decrypted individually, as FGAC demands).
func (db *DB) ReadByMeta(entity core.EntityID, purpose core.Purpose, metaPurpose string, limit int) (int, error) {
	var budget atomic.Int64
	budget.Store(int64(limit))
	return db.readByMetaBudget(entity, purpose, metaPurpose, &budget)
}

// readByMetaBudget is ReadByMeta drawing match slots from a shared
// budget, so the sharded fan-out can bound its merged result at the
// caller's limit. A slot is consumed when a row matches the metadata
// predicate (denied rows keep their slot, as in the unsharded path:
// the limit bounds the scan, not the successful reads).
func (db *DB) readByMetaBudget(entity core.EntityID, purpose core.Purpose, metaPurpose string, budget *atomic.Int64) (int, error) {
	defer db.rlock()()
	now := db.clock.Tick()
	type match struct {
		key []byte
		row []byte
	}
	var matches []match
	db.data.SeqScan(func(k, v []byte) bool {
		if metaHasPurpose(v, metaPurpose) {
			left := budget.Add(-1)
			if left < 0 {
				budget.Add(1)
				return false
			}
			matches = append(matches, match{
				key: append([]byte(nil), k...),
				row: append([]byte(nil), v...),
			})
			// Stop as soon as the last slot is taken — don't walk the
			// rest of the table hunting for a match we couldn't keep.
			return left > 0
		}
		return true
	})
	read := 0
	for _, m := range matches {
		unit := core.UnitID(m.key)
		d := db.policies.Allow(policy.Request{
			Unit: unit, Subject: core.EntityID(metaSubject(m.row)),
			Entity: entity, Purpose: purpose, Action: core.ActionRead, At: now,
		})
		if !d.Allowed {
			db.counters.denials.Add(1)
			continue
		}
		rec, err := decodeRecord(m.row)
		if err != nil {
			return read, err
		}
		if _, err := db.unprotect(rec.Blob); err != nil {
			return read, err
		}
		tuple := core.HistoryTuple{
			Unit: unit, Purpose: purpose, Entity: entity,
			Action: core.Action{Kind: core.ActionRead, SystemAction: "SELECT by-meta"}, At: now,
		}
		if db.profile.LogPolicySnapshots {
			// Demonstrable accountability logs every row-level access
			// with its policy snapshot, not just the query (§4.2: "all
			// policies are logged at the time of all the operations").
			db.logRead(tuple, "SELECT by-meta (row)", nil, unit, &d)
		}
		if db.history != nil {
			db.history.MustAppend(tuple)
		}
		read++
	}
	// One audit entry for the query itself.
	db.logRead(core.HistoryTuple{
		Unit: core.UnitID("query:" + metaPurpose), Purpose: purpose, Entity: entity,
		Action: core.Action{Kind: core.ActionRead, SystemAction: "SELECT by-meta"}, At: now,
	}, "SELECT data WHERE purpose", []byte(fmt.Sprintf("%d rows", read)), "", nil)
	db.counters.metaScans.Add(1)
	return read, nil
}

// buildEntry renders one audit entry per the profile's logging
// grounding. d, when non-nil, is the adjudication that authorized the
// operation: cache-served decisions are recorded with their grounding
// in the policy snapshot — demonstrable accountability must show not
// just that an access was allowed but how the allow was produced.
func (db *DB) buildEntry(tuple core.HistoryTuple, query string, response []byte,
	snapshotUnit core.UnitID, d *policy.Decision) audit.Entry {
	e := audit.Entry{Tuple: tuple, Query: query}
	if db.profile.LogResponses {
		e.Response = response
	}
	if db.profile.LogPolicySnapshots && snapshotUnit != "" {
		// Demonstrable accountability: serialize the unit's policies in
		// force into the entry (P_SYS logs all policies at the time of
		// all operations).
		snap := fmt.Sprintf("unit=%s entity=%s purpose=%s at=%d engine=%s",
			snapshotUnit, tuple.Entity, tuple.Purpose, tuple.At, db.policies.Name())
		if d != nil && d.CacheHit {
			snap += fmt.Sprintf(" decision=cached(valid-through=%s)", d.ValidThrough)
		}
		if lister, ok := db.policies.(policy.PolicyLister); ok {
			for _, p := range lister.PoliciesOf(snapshotUnit) {
				snap += " " + p.String()
			}
		}
		e.PolicySnapshot = []byte(snap)
	}
	return e
}

// logOp writes a synchronous audit entry: mutations, denials-of-record
// and regulation-required actions land in the log before the operation
// returns.
func (db *DB) logOp(tuple core.HistoryTuple, query string, response []byte,
	snapshotUnit core.UnitID, d *policy.Decision) {
	// Logger failures are programming errors in this in-memory stack.
	if err := db.logger.Log(db.buildEntry(tuple, query, response, snapshotUnit, d)); err != nil {
		panic(err)
	}
}

// logRead records a hot-path read: through the bounded async sink when
// the profile has one (the default), synchronously otherwise. The sink
// never drops — a full queue applies backpressure — and flushes at
// every audit, checkpoint, log inspection, log erasure and close.
func (db *DB) logRead(tuple core.HistoryTuple, query string, response []byte,
	snapshotUnit core.UnitID, d *policy.Decision) {
	e := db.buildEntry(tuple, query, response, snapshotUnit, d)
	if db.asink != nil {
		db.asink.LogAsync(e)
		return
	}
	if err := db.logger.Log(e); err != nil {
		panic(err)
	}
}

// deleteSysAction names the physical grounding a delete actually runs
// under on this deployment's backend — the audit trail is compliance
// evidence and must not claim a vacuum that the engine cannot perform.
func (db *DB) deleteSysAction() string {
	switch db.data.(type) {
	case storage.Vacuumer:
		return map[VacuumStyle]string{
			VacuumNone: "DELETE", VacuumLazy: "DELETE+VACUUM", VacuumFull: "DELETE+VACUUM FULL",
		}[db.profile.Vacuum]
	case storage.Purger:
		return "DELETE+purge compaction"
	default:
		return "DELETE"
	}
}

// afterMutation runs the autovacuum policy, the clock-note schedule and
// the checkpointer. The vacuum grounding only applies to backends with
// the Vacuumer capability; on the LSM backend reclamation is driven by
// the purge obligations the deletes registered.
func (db *DB) afterMutation() {
	db.noteClockLocked(false)
	db.maybeCheckpointLocked()
	db.mutationsSinceCheck++
	if db.profile.Vacuum == VacuumNone {
		return
	}
	if db.mutationsSinceCheck < db.profile.VacuumCheckEvery {
		return
	}
	db.mutationsSinceCheck = 0
	v, ok := db.data.(storage.Vacuumer)
	if !ok {
		return
	}
	if v.DeadRatio() < db.profile.VacuumThreshold {
		return
	}
	switch db.profile.Vacuum {
	case VacuumLazy:
		v.VacuumLazy()
		db.counters.vacuums.Add(1)
	case VacuumFull:
		v.VacuumFullRewrite()
		db.counters.vacuumFulls.Add(1)
	}
}

func hasString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
