package loadgen

import (
	"fmt"
	"math"
	"sort"
)

// Zipfian subject selection for the resharding benchmark: a hot-subject
// workload is what makes one shard hot enough to split, so the
// generator must (a) skew hard and (b) be exactly reproducible — the
// same seed must yield the same draw sequence no matter how the stream
// is partitioned across client goroutines. Draws are therefore
// *indexed*, not stateful: draw i is a pure function of (seed, i), so
// client c of P can consume indexes c, c+P, c+2P, ... and the union
// over any client count is the same multiset in the same positions.

// Zipf draws ranks in [0, n) with P(rank k) proportional to
// 1/(k+1)^s. Construct with NewZipf; the zero value is not usable.
type Zipf struct {
	seed uint64
	// cum[k] is the cumulative probability mass of ranks 0..k; draws
	// binary-search it with a uniform variate.
	cum []float64
}

// NewZipf builds an indexed Zipfian generator over n ranks with
// exponent s (s > 0; larger skews harder; s=1 is classic Zipf).
func NewZipf(n int, s float64, seed int64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: zipf needs n > 0, got %d", n)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("loadgen: zipf needs a positive finite exponent, got %v", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	cum[n-1] = 1 // exact upper bound despite rounding
	return &Zipf{seed: uint64(seed), cum: cum}, nil
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix,
// the standard seed-expansion step (Steele et al., "Fast Splittable
// Pseudorandom Number Generators").
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix64 exposes the mixer for callers that need auxiliary indexed
// draws alongside a Zipf stream (key-within-subject selection) with the
// same partition-invariance property.
func Mix64(x uint64) uint64 { return splitmix64(x) }

// Rank returns draw i: the Zipf-distributed rank at stream position i.
// It is a pure function of (seed, i) — no internal state advances — so
// any partition of the index space across clients replays identically.
func (z *Zipf) Rank(i uint64) int {
	// Two mix rounds decorrelate consecutive indexes under any seed.
	u := splitmix64(z.seed ^ splitmix64(i+1))
	// 53 high bits -> uniform float in [0, 1).
	f := float64(u>>11) / (1 << 53)
	return sort.SearchFloat64s(z.cum, f)
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cum) }
