package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"github.com/datacase/datacase/internal/api"
	"github.com/datacase/datacase/internal/compliance"
	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/fanout"
	"github.com/datacase/datacase/internal/gdprbench"
	"github.com/datacase/datacase/internal/wire"
)

// This file is the network soak driver: the closed-loop GDPRBench
// replay of loadgen.Run, but issued by a fleet of wire clients through
// a subject-routing gateway to a set of datacase-server backends —
// end-to-end latency including framing, the TCP hop, gateway routing
// and the backend's compliance engine. By default the run self-hosts
// the whole topology on loopback; pointing GatewayAddr at an external
// deployment measures that instead.

// NetworkConfig sizes one network soak run.
type NetworkConfig struct {
	// Profile is the compliance grounding the self-hosted backends
	// deploy (PBase by default). Ignored when GatewayAddr is set.
	Profile compliance.Profile
	// Workload is the GDPRBench mix to replay.
	Workload gdprbench.WorkloadName
	// Records is the preloaded dataset size.
	Records int
	// Ops is the total operation count, split across connections.
	Ops int
	// Conns is the client-connection fleet size: each connection is one
	// closed-loop client with its own TCP connection to the gateway.
	Conns int
	// Servers is the backend server count of the self-hosted topology.
	Servers int
	// ShardsPerServer is each backend deployment's shard count.
	ShardsPerServer int
	// Seed makes the generated dataset and op stream deterministic.
	Seed int64
	// ScanLimit bounds read-by-meta scans (default 16, as the harness).
	ScanLimit int
	// GatewayAddr, when non-empty, targets an already-running gateway
	// (or server) instead of self-hosting; the run still preloads its
	// dataset through it.
	GatewayAddr string
	// Loaders is the preload connection count (default min(Conns, 32)).
	Loaders int
	// OpTimeout bounds each operation (default 30s): the client's
	// context deadline travels down the wire into the handler.
	OpTimeout time.Duration
}

// withDefaults fills zero fields.
func (c NetworkConfig) withDefaults() NetworkConfig {
	if c.Profile.Name == "" {
		c.Profile = compliance.PBase()
	}
	if c.Workload == "" {
		c.Workload = gdprbench.Controller
	}
	if c.Records <= 0 {
		c.Records = 2000
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Servers <= 0 {
		c.Servers = 2
	}
	if c.ShardsPerServer <= 0 {
		c.ShardsPerServer = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 16
	}
	if c.Loaders <= 0 {
		c.Loaders = min(c.Conns, 32)
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 30 * time.Second
	}
	return c
}

// NetworkResult is the machine-readable outcome of one network soak
// run. Latencies are end-to-end (client-observed) microseconds; the
// JSON field names are the BENCH_network.json schema.
type NetworkResult struct {
	Workload        string  `json:"workload"`
	Profile         string  `json:"profile"`
	Servers         int     `json:"servers"`
	ShardsPerServer int     `json:"shards_per_server"`
	Conns           int     `json:"conns"`
	Records         int     `json:"records"`
	Ops             int     `json:"ops"`
	LoadSeconds     float64 `json:"load_seconds"`
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	MeanMicros      float64 `json:"mean_micros"`
	P50Micros       float64 `json:"p50_micros"`
	P95Micros       float64 `json:"p95_micros"`
	P99Micros       float64 `json:"p99_micros"`
	MaxMicros       float64 `json:"max_micros"`
	// Denied and NotFound count tolerated per-op refusals observed by
	// the clients (the sentinels survive the wire, so the tally is the
	// same one an in-process run would keep).
	Denied   uint64 `json:"denied"`
	NotFound uint64 `json:"not_found"`
	// SelfHosted marks runs that built their own loopback topology;
	// false means GatewayAddr pointed at an external deployment.
	SelfHosted bool `json:"self_hosted"`
}

// String renders one result row.
func (r NetworkResult) String() string {
	return fmt.Sprintf("%-5s %-8s servers=%d×%d conns=%-5d ops=%-7d %9.0f ops/s  "+
		"p50=%.1fµs p95=%.1fµs p99=%.1fµs",
		r.Workload, r.Profile, r.Servers, r.ShardsPerServer, r.Conns, r.Ops, r.OpsPerSec,
		r.P50Micros, r.P95Micros, r.P99Micros)
}

// Validate sanity-checks one result; the CI smoke job fails on the
// first violation.
func (r NetworkResult) Validate() error {
	switch {
	case r.Ops <= 0:
		return fmt.Errorf("loadgen: network result has no ops")
	case r.OpsPerSec <= 0:
		return fmt.Errorf("loadgen: non-positive throughput %f", r.OpsPerSec)
	case r.ElapsedSeconds <= 0:
		return fmt.Errorf("loadgen: non-positive elapsed %f", r.ElapsedSeconds)
	case r.P50Micros > r.P95Micros || r.P95Micros > r.P99Micros || r.P99Micros > r.MaxMicros:
		return fmt.Errorf("loadgen: quantiles out of order: p50=%f p95=%f p99=%f max=%f",
			r.P50Micros, r.P95Micros, r.P99Micros, r.MaxMicros)
	case r.Conns <= 0:
		return fmt.Errorf("loadgen: bad fleet size conns=%d", r.Conns)
	case r.SelfHosted && (r.Servers <= 0 || r.ShardsPerServer <= 0):
		return fmt.Errorf("loadgen: bad topology servers=%d shards=%d", r.Servers, r.ShardsPerServer)
	}
	return nil
}

// NetworkReport is the top-level BENCH_network.json document.
type NetworkReport struct {
	Benchmark string          `json:"benchmark"`
	Schema    int             `json:"schema"`
	Results   []NetworkResult `json:"results"`
}

// NetworkSchemaVersion is bumped when NetworkResult's JSON shape
// changes.
const NetworkSchemaVersion = 1

// WriteNetworkJSON writes the BENCH_network.json document to path.
func WriteNetworkJSON(path string, results []NetworkResult) error {
	rep := NetworkReport{Benchmark: "network", Schema: NetworkSchemaVersion, Results: results}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encode network report: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("loadgen: write %s: %w", path, err)
	}
	return nil
}

// ReadNetworkJSON parses and validates a BENCH_network.json document
// (the CI smoke job's acceptance gate).
func ReadNetworkJSON(path string) (NetworkReport, error) {
	var rep NetworkReport
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("loadgen: read %s: %w", path, err)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if rep.Benchmark != "network" {
		return rep, fmt.Errorf("loadgen: %s is not a network report (benchmark=%q)", path, rep.Benchmark)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("loadgen: %s has no results", path)
	}
	for i, r := range rep.Results {
		if err := r.Validate(); err != nil {
			return rep, fmt.Errorf("loadgen: %s result %d: %w", path, i, err)
		}
	}
	return rep, nil
}

// selfHost builds the loopback topology: Servers wire servers over
// their own sharded deployments, behind one gateway. The returned
// cleanup drains everything.
func selfHost(cfg NetworkConfig) (addr string, cleanup func(), err error) {
	var servers []*wire.Server
	var backends []*api.Local
	var gw *wire.Gateway
	cleanup = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if gw != nil {
			gw.Shutdown(ctx)
		}
		for _, s := range servers {
			s.Shutdown(ctx)
		}
		for _, b := range backends {
			b.Close()
		}
	}
	var addrs []string
	for i := 0; i < cfg.Servers; i++ {
		db, err := compliance.OpenSharded(cfg.Profile, cfg.ShardsPerServer)
		if err != nil {
			cleanup()
			return "", nil, err
		}
		backend := api.NewLocal(db)
		backends = append(backends, backend)
		srv := wire.NewServer(backend)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			cleanup()
			return "", nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	gw, err = wire.NewGateway(1, addrs)
	if err != nil {
		cleanup()
		return "", nil, err
	}
	if err := gw.Listen("127.0.0.1:0"); err != nil {
		cleanup()
		return "", nil, err
	}
	return gw.Addr(), cleanup, nil
}

// RunNetwork executes one closed-loop network measurement: bring up
// (or target) the gateway topology, preload the dataset through it,
// then let Conns wire clients — one TCP connection each — replay
// contiguous slices of the seeded op stream back-to-back, timing every
// round trip into the shared histogram.
func RunNetwork(cfg NetworkConfig) (NetworkResult, error) {
	cfg = cfg.withDefaults()
	addr := cfg.GatewayAddr
	selfHosted := addr == ""
	if selfHosted {
		var cleanup func()
		var err error
		addr, cleanup, err = selfHost(cfg)
		if err != nil {
			return NetworkResult{}, fmt.Errorf("loadgen: self-host: %w", err)
		}
		defer cleanup()
	}

	gen, err := gdprbench.NewGenerator(cfg.Workload, cfg.Records, cfg.Seed)
	if err != nil {
		return NetworkResult{}, err
	}
	load := gen.Load(1<<40, 1<<41) // retention far away: not what we measure
	loadStart := time.Now()
	chunk := (len(load) + cfg.Loaders - 1) / cfg.Loaders
	err = fanout.Run(cfg.Loaders, cfg.Loaders, func(c int) error {
		client, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		defer client.Close()
		ctx := context.Background()
		lo := min(c*chunk, len(load))
		hi := min(lo+chunk, len(load))
		for _, rec := range load[lo:hi] {
			if _, err := client.Create(ctx, api.CreateRequest{Record: rec}); err != nil &&
				!errorsIs(err, compliance.ErrExists) {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return NetworkResult{}, fmt.Errorf("loadgen: network load: %w", err)
	}
	loadTime := time.Since(loadStart)

	opGen, err := gdprbench.NewGenerator(cfg.Workload, cfg.Records, cfg.Seed+7)
	if err != nil {
		return NetworkResult{}, err
	}
	ops := opGen.Ops(cfg.Ops)
	entity, purpose := actorFor(cfg.Workload)

	hist := &Histogram{}
	var denied, notFound atomic.Uint64
	opChunk := (len(ops) + cfg.Conns - 1) / cfg.Conns
	start := time.Now()
	err = fanout.Run(cfg.Conns, cfg.Conns, func(c int) error {
		client, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		defer client.Close()
		lo := min(c*opChunk, len(ops))
		hi := min(lo+opChunk, len(ops))
		for i := lo; i < hi; i++ {
			op := ops[i]
			opStart := time.Now()
			err := applyNetOp(client, op, entity, purpose, cfg.ScanLimit, cfg.OpTimeout)
			hist.RecordDuration(time.Since(opStart))
			switch {
			case err == nil:
			case errorsIs(err, compliance.ErrDenied):
				denied.Add(1)
			case errorsIs(err, compliance.ErrNotFound):
				notFound.Add(1)
			case errorsIs(err, compliance.ErrExists):
				// recycled key re-created by a racing connection
			default:
				return fmt.Errorf("loadgen: network op %v on %q: %w", op.Kind, op.Key, err)
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return NetworkResult{}, err
	}

	res := NetworkResult{
		Workload:        string(cfg.Workload),
		Profile:         cfg.Profile.Name,
		Servers:         cfg.Servers,
		ShardsPerServer: cfg.ShardsPerServer,
		Conns:           cfg.Conns,
		Records:         cfg.Records,
		Ops:             cfg.Ops,
		LoadSeconds:     loadTime.Seconds(),
		ElapsedSeconds:  elapsed.Seconds(),
		MeanMicros:      hist.Mean() / 1e3,
		P50Micros:       float64(hist.Quantile(0.50)) / 1e3,
		P95Micros:       float64(hist.Quantile(0.95)) / 1e3,
		P99Micros:       float64(hist.Quantile(0.99)) / 1e3,
		MaxMicros:       float64(hist.Max()) / 1e3,
		Denied:          denied.Load(),
		NotFound:        notFound.Load(),
		SelfHosted:      selfHosted,
	}
	if !selfHosted {
		res.Servers, res.ShardsPerServer = 0, 0
		res.Profile = "external"
	}
	if s := elapsed.Seconds(); s > 0 {
		res.OpsPerSec = float64(cfg.Ops) / s
	}
	return res, nil
}

// applyNetOp executes one generated operation through a wire client.
func applyNetOp(client *wire.RemoteClient, op gdprbench.Op, entity core.EntityID,
	purpose core.Purpose, scanLimit int, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	switch op.Kind {
	case gdprbench.OpCreate:
		_, err := client.Create(ctx, api.CreateRequest{Record: gdprbench.Record{
			Key:        op.Key,
			Subject:    subjectForKey(op.Key),
			Payload:    op.Payload,
			Purposes:   []string{op.Purpose},
			TTL:        1 << 40,
			Processors: []string{"processor-a"},
		}})
		return err
	case gdprbench.OpReadData:
		_, err := client.ReadData(ctx, api.ReadDataRequest{Key: op.Key, Entity: entity, Purpose: purpose})
		return err
	case gdprbench.OpUpdateData:
		_, err := client.UpdateData(ctx, api.UpdateDataRequest{
			Key: op.Key, Entity: entity, Purpose: purpose, Payload: op.Payload,
		})
		return err
	case gdprbench.OpDeleteData:
		_, err := client.DeleteData(ctx, api.DeleteDataRequest{Key: op.Key, Entity: entity})
		return err
	case gdprbench.OpReadMeta:
		_, err := client.ReadMeta(ctx, api.ReadMetaRequest{Key: op.Key, Entity: entity, Purpose: purpose})
		return err
	case gdprbench.OpUpdateMeta:
		_, err := client.UpdateMeta(ctx, api.UpdateMetaRequest{
			Key: op.Key, Entity: entity, Purpose: purpose,
			NewPurpose: op.Purpose, NewTTL: op.NewTTL,
		})
		return err
	case gdprbench.OpReadByMeta:
		_, err := client.ReadByMeta(ctx, api.ReadByMetaRequest{
			Entity: entity, Purpose: purpose, MetaPurpose: op.Purpose, Limit: scanLimit,
		})
		return err
	default:
		return fmt.Errorf("loadgen: unknown op kind %v", op.Kind)
	}
}

// NetworkSweep runs the soak at each connection count, reusing one
// configuration otherwise.
func NetworkSweep(cfg NetworkConfig, connCounts []int) ([]NetworkResult, error) {
	if len(connCounts) == 0 {
		connCounts = []int{64, 256, 1024}
	}
	results := make([]NetworkResult, 0, len(connCounts))
	for _, conns := range connCounts {
		cfg.Conns = conns
		res, err := RunNetwork(cfg)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}
