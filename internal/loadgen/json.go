package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"github.com/datacase/datacase/internal/wal"
)

// errorsIs keeps the driver file free of the errors import dance.
func errorsIs(err, target error) bool { return errors.Is(err, target) }

// Report is the top-level BENCH_loadgen.json document.
type Report struct {
	Benchmark string   `json:"benchmark"`
	Schema    int      `json:"schema"`
	Results   []Result `json:"results"`
}

// SchemaVersion is bumped when Result's JSON shape changes.
const SchemaVersion = 1

// NewReport wraps results in the benchmark envelope.
func NewReport(results []Result) Report {
	return Report{Benchmark: "loadgen", Schema: SchemaVersion, Results: results}
}

// EncodeReport serializes results as indented JSON.
func EncodeReport(results []Result) ([]byte, error) {
	buf, err := json.MarshalIndent(NewReport(results), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("loadgen: encode report: %w", err)
	}
	return append(buf, '\n'), nil
}

// WriteJSON writes the BENCH_loadgen.json document to path.
func WriteJSON(path string, results []Result) error {
	buf, err := EncodeReport(results)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("loadgen: write %s: %w", path, err)
	}
	return nil
}

// ReadJSON parses a BENCH_loadgen.json document (the CI smoke job and
// tests use it to validate driver output).
func ReadJSON(path string) (Report, error) {
	var rep Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("loadgen: read %s: %w", path, err)
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if rep.Benchmark != "loadgen" {
		return rep, fmt.Errorf("loadgen: %s is not a loadgen report (benchmark=%q)", path, rep.Benchmark)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("loadgen: %s has no results", path)
	}
	for i, r := range rep.Results {
		if err := r.Validate(); err != nil {
			return rep, fmt.Errorf("loadgen: %s result %d: %w", path, i, err)
		}
	}
	return rep, nil
}

// Validate sanity-checks one result: counts consistent, quantiles
// ordered, throughput positive. The CI smoke job fails on the first
// violation.
func (r Result) Validate() error {
	switch {
	case r.Ops <= 0:
		return fmt.Errorf("loadgen: result has no ops")
	case r.OpsPerSec <= 0:
		return fmt.Errorf("loadgen: non-positive throughput %f", r.OpsPerSec)
	case r.ElapsedSeconds <= 0:
		return fmt.Errorf("loadgen: non-positive elapsed %f", r.ElapsedSeconds)
	case r.P50Micros > r.P95Micros || r.P95Micros > r.P99Micros || r.P99Micros > r.MaxMicros:
		return fmt.Errorf("loadgen: quantiles out of order: p50=%f p95=%f p99=%f max=%f",
			r.P50Micros, r.P95Micros, r.P99Micros, r.MaxMicros)
	case r.Clients <= 0 || r.Shards <= 0:
		return fmt.Errorf("loadgen: bad topology clients=%d shards=%d", r.Clients, r.Shards)
	case r.WALSyncs > r.WALAppends:
		return fmt.Errorf("loadgen: more WAL syncs (%d) than appends (%d)", r.WALSyncs, r.WALAppends)
	}
	return nil
}

// StatsOf is a convenience view of a result's WAL counters.
func (r Result) StatsOf() wal.Stats {
	return wal.Stats{
		Appends:     r.WALAppends,
		Syncs:       r.WALSyncs,
		MaxBatch:    r.WALMaxBatch,
		GroupCommit: !r.SerialWAL,
	}
}
