package loadgen

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/datacase/datacase/internal/compliance"
	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/fanout"
	"github.com/datacase/datacase/internal/gdprbench"
)

// Config sizes one closed-loop run.
type Config struct {
	// Profile is the compliance grounding to deploy (PBase by default).
	Profile compliance.Profile
	// Workload is the GDPRBench mix to replay.
	Workload gdprbench.WorkloadName
	// Records is the preloaded dataset size.
	Records int
	// Ops is the total operation count, split across clients.
	Ops int
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Shards is the subject-shard count of the deployment.
	Shards int
	// Seed makes the generated dataset and op stream deterministic.
	Seed int64
	// ScanLimit bounds read-by-meta scans (default 16, as the harness).
	ScanLimit int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = compliance.PBase()
	}
	if c.Workload == "" {
		c.Workload = gdprbench.Controller
	}
	if c.Records <= 0 {
		c.Records = 2000
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 16
	}
	return c
}

// Result is the machine-readable outcome of one run. Latencies are in
// microseconds; the JSON field names are the BENCH_loadgen.json schema.
type Result struct {
	Workload       string  `json:"workload"`
	Profile        string  `json:"profile"`
	Shards         int     `json:"shards"`
	Clients        int     `json:"clients"`
	Records        int     `json:"records"`
	Ops            int     `json:"ops"`
	LoadSeconds    float64 `json:"load_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	MeanMicros     float64 `json:"mean_micros"`
	P50Micros      float64 `json:"p50_micros"`
	P95Micros      float64 `json:"p95_micros"`
	P99Micros      float64 `json:"p99_micros"`
	MaxMicros      float64 `json:"max_micros"`
	// Denied and NotFound count tolerated per-op failures during the
	// measured phase (deleted keys re-drawn by the generator, policy
	// denials), as in GDPRBench.
	Denied   uint64 `json:"denied"`
	NotFound uint64 `json:"not_found"`
	// WAL commit-work counters, summed over the shards' log segments.
	WALAppends  uint64 `json:"wal_appends"`
	WALSyncs    uint64 `json:"wal_syncs"`
	WALMaxBatch uint64 `json:"wal_max_batch"`
	SerialWAL   bool   `json:"serial_wal"`
}

// String renders one result row.
func (r Result) String() string {
	protocol := "group-wal "
	if r.SerialWAL {
		protocol = "serial-wal"
	}
	return fmt.Sprintf("%-5s %-8s %s shards=%-3d clients=%-3d ops=%-7d %9.0f ops/s  "+
		"p50=%.1fµs p95=%.1fµs p99=%.1fµs",
		r.Workload, r.Profile, protocol, r.Shards, r.Clients, r.Ops, r.OpsPerSec,
		r.P50Micros, r.P95Micros, r.P99Micros)
}

// subjectForKey derives a deterministic, well-spread data subject for
// driver creates, so created records spread over shards instead of
// pinning to one subject's home shard.
func subjectForKey(key string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return fmt.Sprintf("person-%05d", h.Sum32()%100000)
}

// actorFor maps a workload to the entity/purpose its operations run as,
// mirroring the paper's controller/processor/customer roles.
func actorFor(w gdprbench.WorkloadName) (core.EntityID, core.Purpose) {
	switch w {
	case gdprbench.Processor:
		return compliance.EntityProcessor, compliance.PurposeProcessing
	case gdprbench.Controller:
		return compliance.EntityController, compliance.PurposeService
	default: // Customer
		return compliance.EntitySubjectSvc, compliance.PurposeSubjectAccess
	}
}

// tolerable reports whether a per-op error is part of normal benchmark
// operation (the generator re-draws deleted keys; strict profiles deny).
func tolerable(err error) bool {
	return err == nil ||
		errorsIs(err, compliance.ErrNotFound) ||
		errorsIs(err, compliance.ErrDenied) ||
		errorsIs(err, compliance.ErrExists)
}

// Run executes one closed-loop measurement: open a sharded deployment,
// preload the dataset with Clients concurrent loaders, pre-generate the
// whole op stream from the seed, split it into one contiguous
// deterministic slice per client, and let every client replay its slice
// back-to-back (closed loop: the next op issues as soon as the previous
// returns), timing each operation into a shared lock-free histogram.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	db, err := compliance.OpenShardedWorkers(cfg.Profile, cfg.Shards, cfg.Clients)
	if err != nil {
		return Result{}, err
	}
	defer db.Close()

	gen, err := gdprbench.NewGenerator(cfg.Workload, cfg.Records, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	load := gen.Load(1<<40, 1<<41) // retention far away: not what we measure
	loadStart := time.Now()
	chunk := (len(load) + cfg.Clients - 1) / cfg.Clients
	err = fanout.Run(cfg.Clients, cfg.Clients, func(c int) error {
		lo := min(c*chunk, len(load))
		hi := min(lo+chunk, len(load))
		for _, rec := range load[lo:hi] {
			if err := db.Create(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: load: %w", err)
	}
	loadTime := time.Since(loadStart)

	// The op stream comes from one seeded generator, so the full stream
	// is deterministic; each client replays a contiguous slice of it.
	opGen, err := gdprbench.NewGenerator(cfg.Workload, cfg.Records, cfg.Seed+7)
	if err != nil {
		return Result{}, err
	}
	ops := opGen.Ops(cfg.Ops)
	entity, purpose := actorFor(cfg.Workload)
	baseline := db.Counters()
	walBaseline := db.WALStats()

	hist := &Histogram{}
	opChunk := (len(ops) + cfg.Clients - 1) / cfg.Clients
	start := time.Now()
	err = fanout.Run(cfg.Clients, cfg.Clients, func(c int) error {
		lo := min(c*opChunk, len(ops))
		hi := min(lo+opChunk, len(ops))
		for i := lo; i < hi; i++ {
			op := ops[i]
			opStart := time.Now()
			err := applyOp(db, op, entity, purpose, cfg.ScanLimit)
			hist.RecordDuration(time.Since(opStart))
			if !tolerable(err) {
				return fmt.Errorf("loadgen: op %v on %q: %w", op.Kind, op.Key, err)
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	counters := db.Counters()
	// WAL counters cover the measured phase only (the preload's appends
	// and syncs are subtracted); MaxBatch is the whole run's high-water
	// mark, since maxima don't subtract.
	walStats := db.WALStats()
	walStats.Appends -= walBaseline.Appends
	walStats.Syncs -= walBaseline.Syncs
	res := Result{
		Workload:       string(cfg.Workload),
		Profile:        cfg.Profile.Name,
		Shards:         cfg.Shards,
		Clients:        cfg.Clients,
		Records:        cfg.Records,
		Ops:            cfg.Ops,
		LoadSeconds:    loadTime.Seconds(),
		ElapsedSeconds: elapsed.Seconds(),
		MeanMicros:     hist.Mean() / 1e3,
		P50Micros:      float64(hist.Quantile(0.50)) / 1e3,
		P95Micros:      float64(hist.Quantile(0.95)) / 1e3,
		P99Micros:      float64(hist.Quantile(0.99)) / 1e3,
		MaxMicros:      float64(hist.Max()) / 1e3,
		Denied:         counters.Denials - baseline.Denials,
		NotFound:       counters.NotFound - baseline.NotFound,
		WALAppends:     walStats.Appends,
		WALSyncs:       walStats.Syncs,
		WALMaxBatch:    walStats.MaxBatch,
		SerialWAL:      cfg.Profile.SerialWAL,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.OpsPerSec = float64(cfg.Ops) / s
	}
	return res, nil
}

// applyOp executes one generated operation against the deployment.
func applyOp(db *compliance.ShardedDB, op gdprbench.Op, entity core.EntityID,
	purpose core.Purpose, scanLimit int) error {
	switch op.Kind {
	case gdprbench.OpCreate:
		return db.Create(gdprbench.Record{
			Key:        op.Key,
			Subject:    subjectForKey(op.Key),
			Payload:    op.Payload,
			Purposes:   []string{op.Purpose},
			TTL:        1 << 40,
			Processors: []string{"processor-a"},
		})
	case gdprbench.OpReadData:
		_, err := db.ReadData(entity, purpose, op.Key)
		return err
	case gdprbench.OpUpdateData:
		return db.UpdateData(entity, purpose, op.Key, op.Payload)
	case gdprbench.OpDeleteData:
		return db.DeleteData(entity, op.Key)
	case gdprbench.OpReadMeta:
		_, err := db.ReadMeta(entity, purpose, op.Key)
		return err
	case gdprbench.OpUpdateMeta:
		return db.UpdateMeta(entity, purpose, op.Key, op.Purpose, op.NewTTL)
	case gdprbench.OpReadByMeta:
		_, err := db.ReadByMeta(entity, purpose, op.Purpose, scanLimit)
		return err
	default:
		return fmt.Errorf("loadgen: unknown op kind %v", op.Kind)
	}
}

// WALComparison pairs a group-commit run with a per-append-locking run
// of the same configuration (same seed, same op stream), isolating the
// WAL commit protocol as the only difference.
func WALComparison(cfg Config) (group, serial Result, err error) {
	cfg = cfg.withDefaults()
	cfg.Profile.SerialWAL = false
	group, err = Run(cfg)
	if err != nil {
		return group, serial, err
	}
	cfg.Profile.SerialWAL = true
	serial, err = Run(cfg)
	return group, serial, err
}
