package loadgen

import (
	"math"
	"sync"
	"testing"
)

func TestBucketIndexExactBelow32(t *testing.T) {
	for v := uint64(0); v < subBucketCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d", v, got)
		}
		if got := bucketValue(int(v)); got != v {
			t.Fatalf("bucketValue(%d) = %d", v, got)
		}
	}
}

func TestBucketIndexMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, 1<<63 + 1, math.MaxUint64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d (not monotone)", v, idx, prev)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
	if got := bucketIndex(math.MaxUint64); got != numBuckets-1 {
		t.Fatalf("max value lands in bucket %d, want %d", got, numBuckets-1)
	}
}

func TestBucketRelativeError(t *testing.T) {
	for _, v := range []uint64{100, 999, 12345, 1 << 20, 987654321} {
		rep := bucketValue(bucketIndex(v))
		err := math.Abs(float64(rep)-float64(v)) / float64(v)
		if err > 1.0/subBucketCount {
			t.Fatalf("value %d represented as %d: relative error %f too large", v, rep, err)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 1..1000: quantiles are predictable within bucket resolution.
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500.5) > 0.01 {
		t.Fatalf("Mean = %f", mean)
	}
	checks := map[float64]uint64{0.5: 500, 0.95: 950, 0.99: 990}
	for q, want := range checks {
		got := h.Quantile(q)
		if math.Abs(float64(got)-float64(want))/float64(want) > 2.0/subBucketCount {
			t.Fatalf("Quantile(%f) = %d, want ~%d", q, got, want)
		}
	}
	if h.Quantile(1) != 1000 {
		t.Fatalf("Quantile(1) = %d, want exact max", h.Quantile(1))
	}
	if h.Quantile(0) == 0 {
		t.Fatal("Quantile(0) should be the smallest recorded value bucket, not 0")
	}
	// Out-of-range quantiles clamp.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{}
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Max() != goroutines*per-1 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Quantile(0.5) == 0 {
		t.Fatal("median of concurrent load is zero")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
		b.Record(v + 100)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Max() != 200 {
		t.Fatalf("merged Max = %d", a.Max())
	}
	if mean := a.Mean(); math.Abs(mean-100.5) > 0.01 {
		t.Fatalf("merged Mean = %f", mean)
	}
}

func TestRecordDurationNegativeClamps(t *testing.T) {
	h := &Histogram{}
	h.RecordDuration(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative duration not clamped to zero")
	}
}
