package loadgen

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/datacase/datacase/internal/compliance"
	"github.com/datacase/datacase/internal/gdprbench"
)

// osWriteFile aliases os.WriteFile for the garbage-input helpers.
var osWriteFile = os.WriteFile

// smallConfig keeps driver tests around tens of milliseconds.
func smallConfig(w gdprbench.WorkloadName, clients int) Config {
	return Config{
		Workload: w,
		Records:  400,
		Ops:      400,
		Clients:  clients,
		Shards:   8,
		Seed:     1,
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, w := range gdprbench.Workloads() {
		w := w
		t.Run(string(w), func(t *testing.T) {
			res, err := Run(smallConfig(w, 4))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatal(err)
			}
			if res.Workload != string(w) || res.Clients != 4 || res.Shards != 8 {
				t.Fatalf("result mislabelled: %+v", res)
			}
			if res.Profile != "P_Base" {
				t.Fatalf("default profile = %q", res.Profile)
			}
		})
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	res, err := Run(Config{Workload: gdprbench.Processor, Records: 200, Ops: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 1 || res.Shards != 16 {
		t.Fatalf("defaults not applied: %+v", res)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if _, err := Run(Config{Workload: "bogus", Records: 10, Ops: 10}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRunDeterministicOpStream asserts the driver replays the same
// operations for the same seed: two runs agree on the op-derived record
// population (creates minus deletes land identically).
func TestRunDeterministicOpStream(t *testing.T) {
	gen1, err := gdprbench.NewGenerator(gdprbench.Controller, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := gdprbench.NewGenerator(gdprbench.Controller, 300, 8)
	if err != nil {
		t.Fatal(err)
	}
	ops1, ops2 := gen1.Ops(500), gen2.Ops(500)
	for i := range ops1 {
		if ops1[i].Kind != ops2[i].Kind || ops1[i].Key != ops2[i].Key {
			t.Fatalf("op %d diverged: %+v vs %+v", i, ops1[i], ops2[i])
		}
	}
}

// TestRunWALAccounting checks the write path is really logging: a
// controller run (50% writes) must append WAL records, never more syncs
// than appends, and the group-commit default must be in force.
func TestRunWALAccounting(t *testing.T) {
	res, err := Run(smallConfig(gdprbench.Controller, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.WALAppends == 0 {
		t.Fatal("controller workload appended nothing to the WAL")
	}
	if res.WALSyncs > res.WALAppends {
		t.Fatalf("syncs %d > appends %d", res.WALSyncs, res.WALAppends)
	}
	if res.SerialWAL {
		t.Fatal("default run should use group commit")
	}
	if !res.StatsOf().GroupCommit {
		t.Fatal("StatsOf lost the protocol flag")
	}
}

// TestWALComparison runs the same config under both commit protocols
// and checks both complete with identical workload shape.
func TestWALComparison(t *testing.T) {
	group, serial, err := WALComparison(smallConfig(gdprbench.Controller, 4))
	if err != nil {
		t.Fatal(err)
	}
	if group.SerialWAL || !serial.SerialWAL {
		t.Fatalf("protocol labels wrong: group=%v serial=%v", group.SerialWAL, serial.SerialWAL)
	}
	// With one client the replay is deterministic, so the two protocols
	// must log exactly the same records. (Concurrent replays may differ
	// by a handful of tolerated not-found races, so equality is only
	// asserted single-client.)
	g1, s1, err := WALComparison(smallConfig(gdprbench.Controller, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g1.WALAppends != s1.WALAppends {
		t.Fatalf("same single-client op stream appended differently: group=%d serial=%d",
			g1.WALAppends, s1.WALAppends)
	}
	// Serial pays one sync per append, by construction.
	if serial.WALSyncs != serial.WALAppends {
		t.Fatalf("serial run syncs=%d appends=%d", serial.WALSyncs, serial.WALAppends)
	}
	if group.WALSyncs > group.WALAppends {
		t.Fatalf("group run syncs=%d appends=%d", group.WALSyncs, group.WALAppends)
	}
}

func TestWriteReadJSONRoundTrip(t *testing.T) {
	res, err := Run(smallConfig(gdprbench.Customer, 2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_loadgen.json")
	if err := WriteJSON(path, []Result{res}); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "loadgen" || rep.Schema != SchemaVersion {
		t.Fatalf("envelope wrong: %+v", rep)
	}
	if len(rep.Results) != 1 || rep.Results[0] != res {
		t.Fatalf("round trip diverged: %+v vs %+v", rep.Results[0], res)
	}
	if err := rep.Results[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := writeFile(empty, `{"benchmark":"loadgen","schema":1,"results":[]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(empty); err == nil {
		t.Fatal("empty results accepted")
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := writeFile(wrong, `{"benchmark":"other","results":[{}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(wrong); err == nil {
		t.Fatal("wrong benchmark accepted")
	}
}

func TestResultValidate(t *testing.T) {
	good := Result{
		Ops: 10, OpsPerSec: 5, ElapsedSeconds: 2,
		P50Micros: 1, P95Micros: 2, P99Micros: 3, MaxMicros: 4,
		Clients: 1, Shards: 1, WALAppends: 5, WALSyncs: 3,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Result){
		func(r *Result) { r.Ops = 0 },
		func(r *Result) { r.OpsPerSec = 0 },
		func(r *Result) { r.ElapsedSeconds = -1 },
		func(r *Result) { r.P50Micros = 10 },
		func(r *Result) { r.Clients = 0 },
		func(r *Result) { r.WALSyncs = 99 },
	}
	for i, mutate := range bads {
		r := good
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Fatalf("bad result %d accepted", i)
		}
	}
}

func TestRunWithPSYSProfile(t *testing.T) {
	cfg := smallConfig(gdprbench.Customer, 2)
	cfg.Profile = compliance.PSYS()
	cfg.Records, cfg.Ops = 200, 150
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != "P_SYS" {
		t.Fatalf("profile = %q", res.Profile)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResultString(t *testing.T) {
	res := Result{Workload: "WCon", Profile: "P_Base", Shards: 8, Clients: 4,
		Ops: 100, OpsPerSec: 1234, P50Micros: 1, P95Micros: 2, P99Micros: 3}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

// writeFile is a tiny helper so the garbage tests stay table-shaped.
func writeFile(path, content string) error {
	return osWriteFile(path, []byte(content), 0o644)
}

func TestReadJSONValidatesRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.json")
	doc := `{"benchmark":"loadgen","schema":1,"results":[
	  {"workload":"WCon","ops":10,"ops_per_sec":0,"elapsed_seconds":1,
	   "clients":1,"shards":1,"p50_micros":1,"p95_micros":2,"p99_micros":3,"max_micros":4}]}`
	if err := writeFile(path, doc); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil {
		t.Fatal("row with zero throughput accepted")
	}
}
