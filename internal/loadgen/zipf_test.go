package loadgen

import "testing"

// zipfGolden pins the first 64 draws of NewZipf(16, 1.2, 42). The table
// is load-bearing: BENCH_reshard.json trajectories are only comparable
// across runs and machines if the workload's subject sequence never
// drifts, so any change to the mixing or search logic must show up here
// as a deliberate table update.
var zipfGolden = [64]int{
	1, 0, 0, 2, 5, 0, 1, 5, 0, 0, 0, 0, 0, 0, 0, 2,
	1, 0, 4, 4, 0, 1, 12, 1, 2, 0, 1, 1, 0, 1, 11, 0,
	0, 1, 15, 0, 8, 0, 0, 1, 0, 1, 2, 5, 5, 5, 0, 1,
	1, 8, 15, 14, 9, 5, 0, 2, 3, 2, 0, 1, 2, 11, 3, 3,
}

func TestZipfGoldenDraws(t *testing.T) {
	z, err := NewZipf(16, 1.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range zipfGolden {
		if got := z.Rank(uint64(i)); got != want {
			t.Fatalf("draw %d = %d, want %d (indexed generator drifted)", i, got, want)
		}
	}
}

// TestZipfClientPartitionInvariance: the draw at stream position i must
// not depend on how many clients consume the stream — client c of P
// reads positions c, c+P, ... and every partitioning must see the same
// values at the same positions.
func TestZipfClientPartitionInvariance(t *testing.T) {
	z, err := NewZipf(64, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 4096
	reference := make([]int, draws)
	for i := range reference {
		reference[i] = z.Rank(uint64(i))
	}
	for _, clients := range []int{1, 2, 3, 8, 32} {
		seen := make([]int, draws)
		for c := 0; c < clients; c++ {
			for i := c; i < draws; i += clients {
				seen[i] = z.Rank(uint64(i))
			}
		}
		for i := range seen {
			if seen[i] != reference[i] {
				t.Fatalf("clients=%d: draw %d = %d, want %d", clients, i, seen[i], reference[i])
			}
		}
	}
}

func TestZipfSeedsDiffer(t *testing.T) {
	a, _ := NewZipf(1024, 1.2, 1)
	b, _ := NewZipf(1024, 1.2, 2)
	same := 0
	for i := uint64(0); i < 1024; i++ {
		if a.Rank(i) == b.Rank(i) {
			same++
		}
	}
	// Skewed distributions collide often by chance; identical streams
	// would collide everywhere.
	if same > 900 {
		t.Fatalf("seeds 1 and 2 agree on %d/1024 draws", same)
	}
}

// TestZipfSkew: the head ranks must dominate — that is the property the
// resharding benchmark relies on to heat exactly one shard — and every
// rank must stay in range.
func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(100, 1.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 20000
	counts := make([]int, 100)
	for i := uint64(0); i < draws; i++ {
		r := z.Rank(i)
		if r < 0 || r >= 100 {
			t.Fatalf("draw %d = rank %d out of range", i, r)
		}
		counts[r]++
	}
	head := counts[0] + counts[1] + counts[2]
	if head < draws/3 {
		t.Fatalf("top-3 ranks drew %d/%d, want at least a third (not Zipfian)", head, draws)
	}
	if counts[0] <= counts[99] {
		t.Fatalf("rank 0 (%d draws) not hotter than rank 99 (%d)", counts[0], counts[99])
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 1.2, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(10, 0, 1); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := NewZipf(10, -1, 1); err == nil {
		t.Fatal("negative exponent accepted")
	}
}
