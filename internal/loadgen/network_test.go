package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/datacase/datacase/internal/gdprbench"
)

func TestRunNetworkSmoke(t *testing.T) {
	res, err := RunNetwork(NetworkConfig{
		Workload: gdprbench.Controller,
		Records:  300, Ops: 400, Conns: 8,
		Servers: 2, ShardsPerServer: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.SelfHosted || res.Servers != 2 || res.Conns != 8 {
		t.Fatalf("result = %+v", res)
	}
	if res.P50Micros <= 0 {
		t.Fatalf("no latency measured: %+v", res)
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	res, err := RunNetwork(NetworkConfig{
		Workload: gdprbench.Customer,
		Records:  200, Ops: 200, Conns: 4,
		Servers: 1, ShardsPerServer: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_network.json")
	if err := WriteNetworkJSON(path, []NetworkResult{res}); err != nil {
		t.Fatal(err)
	}
	rep, err := ReadNetworkJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "network" || rep.Schema != NetworkSchemaVersion || len(rep.Results) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Results[0].Workload != string(gdprbench.Customer) {
		t.Fatalf("workload = %q", rep.Results[0].Workload)
	}
}

func TestReadNetworkJSONRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"wrong-benchmark.json": `{"benchmark":"loadgen","schema":1,"results":[{"ops":1}]}`,
		"no-results.json":      `{"benchmark":"network","schema":1,"results":[]}`,
		"bad-result.json": `{"benchmark":"network","schema":1,"results":[
			{"workload":"wcon","conns":4,"ops":0}]}`,
		"quantile-disorder.json": `{"benchmark":"network","schema":1,"results":[
			{"workload":"wcon","conns":4,"ops":10,"ops_per_sec":5,"elapsed_seconds":2,
			 "p50_micros":90,"p95_micros":50,"p99_micros":100,"max_micros":200}]}`,
	}
	for name, doc := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadNetworkJSON(path); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestNetworkResultString(t *testing.T) {
	s := NetworkResult{
		Workload: "wcon", Profile: "P_Base", Servers: 2, ShardsPerServer: 4,
		Conns: 64, Ops: 1000, OpsPerSec: 1234,
		P50Micros: 10, P95Micros: 20, P99Micros: 30,
	}.String()
	for _, want := range []string{"wcon", "servers=2×4", "conns=64", "p99=30.0µs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("row %q missing %q", s, want)
		}
	}
}
