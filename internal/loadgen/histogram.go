// Package loadgen is the concurrent closed-loop workload driver: P
// client goroutines each replay a deterministic slice of a GDPRBench
// workload against a subject-sharded compliance deployment, recording
// per-operation latency into a shared lock-free histogram, and the run
// is summarized as throughput plus latency quantiles in machine-readable
// JSON (the BENCH_loadgen.json trajectory CI tracks).
package loadgen

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is HDR-style log-linear: values below subBucketCount
// are recorded exactly; above that, each power-of-two range is split
// into subBucketCount linear sub-buckets, bounding relative error at
// 1/subBucketCount (~3%) across the full uint64 range. Recording is one
// atomic add into a fixed array — no locks, no allocation — so any
// number of clients share one histogram without coordination.
const (
	subBucketBits  = 5
	subBucketCount = 1 << subBucketBits // 32 sub-buckets per octave
	// numBuckets covers every uint64: 32 exact buckets plus 58 octaves
	// of 32 sub-buckets (index formula peaks at 58*32+63).
	numBuckets = 1920
)

// Histogram is a lock-free latency histogram. The zero value is ready
// to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subBucketCount {
		return int(v)
	}
	// Shift so the mantissa lands in [subBucketCount, 2*subBucketCount).
	k := bits.Len64(v) - subBucketBits - 1
	idx := k*subBucketCount + int(v>>uint(k))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketValue returns the midpoint value a bucket represents.
func bucketValue(idx int) uint64 {
	if idx < subBucketCount {
		return uint64(idx)
	}
	k := idx/subBucketCount - 1
	m := uint64(idx - k*subBucketCount)
	return m<<uint(k) + uint64(1)<<uint(k)/2
}

// Record adds one value (a latency in nanoseconds).
func (h *Histogram) Record(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration adds one latency sample.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean of the recorded values.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q in [0, 1]. Values below 32
// are exact; larger ones carry the ~3% bucketing error. Quantile(1)
// returns the exact maximum. Concurrent recording skews the answer by
// at most the in-flight samples.
func (h *Histogram) Quantile(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		return h.Max()
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			v := bucketValue(i)
			if m := h.Max(); v > m {
				// The top occupied bucket's midpoint can overshoot the
				// true maximum; clamp so quantiles never exceed it.
				return m
			}
			return v
		}
	}
	return h.Max()
}

// Merge adds another histogram's counts into h. The other histogram
// should be quiescent; concurrent recording into it merges a snapshot.
func (h *Histogram) Merge(o *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Summary renders count/mean/p50/p95/p99/max with the values scaled as
// microseconds (the driver records nanoseconds).
func (h *Histogram) Summary() string {
	us := func(v uint64) float64 { return float64(v) / 1e3 }
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p95=%.1fµs p99=%.1fµs max=%.1fµs",
		h.Count(), h.Mean()/1e3, us(h.Quantile(0.50)), us(h.Quantile(0.95)),
		us(h.Quantile(0.99)), us(h.Max()))
}
