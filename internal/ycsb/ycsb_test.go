package ycsb

import (
	"math/rand"
	"testing"
)

func TestWorkloadCMix(t *testing.T) {
	g, err := NewGenerator(WorkloadC, 1000, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range g.Ops(5000) {
		if op.Kind != OpRead {
			t.Fatalf("YCSB-C generated a %v", op.Kind)
		}
		if op.Key == "" {
			t.Fatal("empty key")
		}
	}
}

func TestWorkloadAMix(t *testing.T) {
	g, err := NewGenerator(WorkloadA, 1000, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 20000
	for _, op := range g.Ops(n) {
		if op.Kind == OpRead {
			reads++
		} else if len(op.Payload) != 64 {
			t.Fatalf("update payload = %d bytes", len(op.Payload))
		}
	}
	if reads < n*45/100 || reads > n*55/100 {
		t.Fatalf("YCSB-A reads = %d of %d", reads, n)
	}
}

func TestWorkloadBMix(t *testing.T) {
	g, err := NewGenerator(WorkloadB, 1000, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 20000
	for _, op := range g.Ops(n) {
		if op.Kind == OpRead {
			reads++
		}
	}
	if reads < n*93/100 || reads > n*97/100 {
		t.Fatalf("YCSB-B reads = %d of %d", reads, n)
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipfian(10000, 0.99, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 10000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// The hottest key must be dramatically more popular than the median:
	// zipfian(0.99) sends a large share of draws to the head.
	if counts[0] < n/100 {
		t.Fatalf("head key drew only %d of %d", counts[0], n)
	}
	distinct := len(counts)
	if distinct < 100 {
		t.Fatalf("only %d distinct keys drawn", distinct)
	}
}

func TestZipfianValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipfian(0, 0.99, rng); err == nil {
		t.Fatal("empty domain accepted")
	}
	if _, err := NewZipfian(10, 1.5, rng); err == nil {
		t.Fatal("theta >= 1 accepted")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator("bogus", 100, 64, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := NewGenerator(WorkloadC, 0, 64, 1); err == nil {
		t.Fatal("zero records accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := NewGenerator(WorkloadC, 1000, 64, 99)
	g2, _ := NewGenerator(WorkloadC, 1000, 64, 99)
	o1, o2 := g1.Ops(100), g2.Ops(100)
	for i := range o1 {
		if o1[i].Key != o2[i].Key {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}
