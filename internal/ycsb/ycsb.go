// Package ycsb reimplements the YCSB workload generators [20] the paper
// uses: Workload C (100% reads, the paper's non-GDPR baseline) plus A
// (50/50 read/update) and B (95/5) for ablations. Keys follow a zipfian
// popularity distribution, as in the original benchmark.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is a YCSB operation.
type OpKind uint8

// YCSB operations.
const (
	OpRead OpKind = iota
	OpUpdate
)

// String returns the op name.
func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "update"
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     string
	Payload []byte
}

// WorkloadName selects the mix.
type WorkloadName string

// The implemented workloads.
const (
	WorkloadA WorkloadName = "YCSB-A" // 50% read, 50% update
	WorkloadB WorkloadName = "YCSB-B" // 95% read, 5% update
	WorkloadC WorkloadName = "YCSB-C" // 100% read
)

// readFraction returns the read share of the workload.
func readFraction(w WorkloadName) (float64, error) {
	switch w {
	case WorkloadA:
		return 0.50, nil
	case WorkloadB:
		return 0.95, nil
	case WorkloadC:
		return 1.00, nil
	default:
		return 0, fmt.Errorf("ycsb: unknown workload %q", w)
	}
}

// Generator produces YCSB operations over a fixed key space.
type Generator struct {
	workload WorkloadName
	reads    float64
	rng      *rand.Rand
	zipf     *Zipfian
	records  int
	valueLen int
}

// NewGenerator builds a generator over `records` keys with ~valueLen-byte
// update payloads.
func NewGenerator(w WorkloadName, records, valueLen int, seed int64) (*Generator, error) {
	rf, err := readFraction(w)
	if err != nil {
		return nil, err
	}
	if records <= 0 || valueLen <= 0 {
		return nil, fmt.Errorf("ycsb: records and valueLen must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	z, err := NewZipfian(records, 0.99, rng)
	if err != nil {
		return nil, err
	}
	return &Generator{
		workload: w, reads: rf, rng: rng, zipf: z,
		records: records, valueLen: valueLen,
	}, nil
}

// Workload returns the workload name.
func (g *Generator) Workload() WorkloadName { return g.workload }

// KeyFor renders the key for an index (shared with the loader).
func KeyFor(i int) string { return fmt.Sprintf("user%08d", i) }

// Next generates one operation.
func (g *Generator) Next() Op {
	key := KeyFor(g.zipf.Next())
	if g.rng.Float64() < g.reads {
		return Op{Kind: OpRead, Key: key}
	}
	payload := make([]byte, g.valueLen)
	for i := range payload {
		payload[i] = byte('a' + g.rng.Intn(26))
	}
	return Op{Kind: OpUpdate, Key: key, Payload: payload}
}

// Ops generates n operations.
func (g *Generator) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Zipfian draws integers in [0, n) with a zipfian distribution, using
// the Gray et al. rejection-inversion method popularized by YCSB's
// ZipfianGenerator.
type Zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian builds a generator over [0, n) with skew theta in (0, 1).
func NewZipfian(n int, theta float64, rng *rand.Rand) (*Zipfian, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ycsb: zipfian over empty domain")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("ycsb: zipfian theta must be in (0,1), got %f", theta)
	}
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z, nil
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
