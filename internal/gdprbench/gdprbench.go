// Package gdprbench reimplements the GDPRBench workload model [68] the
// paper evaluates with: GDPR-shaped records (personal data enriched with
// compliance metadata) and the three workloads
//
//   - Controller  (WCon): 25% create, 25% delete, 50% metadata updates;
//   - Processor   (WPro): 80% reads of data by key, 20% reads of data
//     using metadata (purpose-predicate scans);
//   - Customer    (WCus): 20% each of data reads, data updates, data
//     deletes, metadata reads and metadata updates.
//
// Records are enriched with Mall-dataset payloads (package mall), as in
// §4.2 of the paper. Generators are deterministic for a given seed.
package gdprbench

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/datacase/datacase/internal/mall"
)

// OpKind is a workload operation type.
type OpKind uint8

// The GDPRBench operation vocabulary.
const (
	// OpCreate inserts a new record with fresh metadata.
	OpCreate OpKind = iota
	// OpReadData reads a record's personal data by key.
	OpReadData
	// OpUpdateData overwrites a record's personal data.
	OpUpdateData
	// OpDeleteData exercises the right to erasure on a record.
	OpDeleteData
	// OpReadMeta reads a record's compliance metadata (policies, TTL).
	OpReadMeta
	// OpUpdateMeta changes a record's metadata (e.g. TTL, consent).
	OpUpdateMeta
	// OpReadByMeta reads data using metadata: scan records whose
	// metadata matches a purpose predicate.
	OpReadByMeta
)

var opKindNames = [...]string{
	OpCreate:     "create",
	OpReadData:   "read-data",
	OpUpdateData: "update-data",
	OpDeleteData: "delete-data",
	OpReadMeta:   "read-meta",
	OpUpdateMeta: "update-meta",
	OpReadByMeta: "read-by-meta",
}

// String returns the operation name.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	// Key is the record key the op targets (empty for OpReadByMeta).
	Key string
	// Payload is the personal data for creates/updates.
	Payload []byte
	// Purpose is the predicate purpose for OpReadByMeta and the new
	// purpose for OpUpdateMeta.
	Purpose string
	// NewTTL is the metadata update's new TTL (for OpUpdateMeta).
	NewTTL int64
}

// Record is a GDPRBench record: personal data plus GDPR metadata.
type Record struct {
	Key string
	// Subject is the data subject the record identifies.
	Subject string
	// Payload is the personal data (a mall observation).
	Payload []byte
	// Purposes the data was collected for.
	Purposes []string
	// TTL is the retention deadline (logical time units from creation).
	TTL int64
	// Processors allowed to access the record.
	Processors []string
	// Objected marks a data subject's objection to processing (G21).
	Objected bool
}

// Purposes used by the generated records.
var Purposes = []string{"billing", "analytics", "advertising", "service", "research"}

// Processors used by the generated records.
var Processors = []string{"processor-a", "processor-b"}

// WorkloadName identifies one of the paper's workload mixes.
type WorkloadName string

// The three GDPRBench workloads.
const (
	Controller WorkloadName = "WCon"
	Processor  WorkloadName = "WPro"
	Customer   WorkloadName = "WCus"
)

// Workloads returns the three workloads in the paper's order.
func Workloads() []WorkloadName {
	return []WorkloadName{Controller, Processor, Customer}
}

// ParseWorkload maps a command-line spelling to a workload name. It
// accepts the canonical names (WCon/WPro/WCus) and the short forms
// (wcon/wpro/wcus, controller/processor/customer), case-insensitively.
func ParseWorkload(s string) (WorkloadName, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "wcon", "controller":
		return Controller, nil
	case "wpro", "processor":
		return Processor, nil
	case "wcus", "customer":
		return Customer, nil
	default:
		return "", fmt.Errorf("gdprbench: unknown workload %q (want wcon, wpro or wcus)", s)
	}
}

// mix returns the cumulative operation distribution of a workload.
type opWeight struct {
	kind   OpKind
	weight int
}

func mixOf(w WorkloadName) ([]opWeight, error) {
	switch w {
	case Controller:
		return []opWeight{
			{OpCreate, 25}, {OpDeleteData, 25}, {OpUpdateMeta, 50},
		}, nil
	case Processor:
		return []opWeight{
			{OpReadData, 80}, {OpReadByMeta, 20},
		}, nil
	case Customer:
		return []opWeight{
			{OpReadData, 20}, {OpUpdateData, 20}, {OpDeleteData, 20},
			{OpReadMeta, 20}, {OpUpdateMeta, 20},
		}, nil
	default:
		return nil, fmt.Errorf("gdprbench: unknown workload %q", w)
	}
}

// Generator produces the initial dataset and the operation stream for
// one workload.
type Generator struct {
	workload WorkloadName
	mix      []opWeight
	rng      *rand.Rand
	payloads *mall.Generator
	// records is the number of pre-loaded records; creates extend it.
	records int
	nextKey int
}

// NewGenerator builds a generator for the workload over an initial
// dataset of `records` records.
func NewGenerator(w WorkloadName, records int, seed int64) (*Generator, error) {
	mix, err := mixOf(w)
	if err != nil {
		return nil, err
	}
	if records <= 0 {
		return nil, fmt.Errorf("gdprbench: records must be positive")
	}
	payloads, err := mall.NewGenerator(seed+1, records, 64)
	if err != nil {
		return nil, err
	}
	return &Generator{
		workload: w,
		mix:      mix,
		rng:      rand.New(rand.NewSource(seed)),
		payloads: payloads,
		records:  records,
		nextKey:  records,
	}, nil
}

// Workload returns the workload name.
func (g *Generator) Workload() WorkloadName { return g.workload }

// KeyFor renders the record key for an index.
func KeyFor(i int) string { return fmt.Sprintf("user%08d", i) }

// Load returns the initial dataset: `records` GDPR records with mall
// payloads, round-robin purposes and processors, and TTLs spread over
// [ttlMin, ttlMax).
func (g *Generator) Load(ttlMin, ttlMax int64) []Record {
	out := make([]Record, g.records)
	for i := range out {
		ttl := ttlMin
		if ttlMax > ttlMin {
			ttl += g.rng.Int63n(ttlMax - ttlMin)
		}
		out[i] = Record{
			Key:        KeyFor(i),
			Subject:    fmt.Sprintf("person-%05d", i%100000),
			Payload:    g.payloads.PayloadFor(i % 100000),
			Purposes:   []string{Purposes[i%len(Purposes)], Purposes[(i+1)%len(Purposes)]},
			TTL:        ttl,
			Processors: []string{Processors[i%len(Processors)]},
			Objected:   g.rng.Intn(100) == 0,
		}
	}
	return out
}

// Next generates the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Intn(100)
	acc := 0
	kind := g.mix[len(g.mix)-1].kind
	for _, w := range g.mix {
		acc += w.weight
		if r < acc {
			kind = w.kind
			break
		}
	}
	switch kind {
	case OpCreate:
		key := KeyFor(g.nextKey)
		person := g.nextKey % 100000
		g.nextKey++
		return Op{Kind: OpCreate, Key: key, Payload: g.payloads.PayloadFor(person),
			Purpose: Purposes[g.rng.Intn(len(Purposes))]}
	case OpReadData, OpReadMeta, OpDeleteData:
		return Op{Kind: kind, Key: g.randomKey()}
	case OpUpdateData:
		k := g.randomKey()
		return Op{Kind: kind, Key: k, Payload: g.payloads.PayloadFor(g.rng.Intn(100000))}
	case OpUpdateMeta:
		return Op{Kind: kind, Key: g.randomKey(),
			Purpose: Purposes[g.rng.Intn(len(Purposes))],
			NewTTL:  int64(g.rng.Intn(1 << 20))}
	case OpReadByMeta:
		return Op{Kind: kind, Purpose: Purposes[g.rng.Intn(len(Purposes))]}
	default:
		panic("gdprbench: unreachable")
	}
}

// randomKey picks uniformly over all keys ever created. Keys already
// deleted may be drawn — the paper's benchmark behaves the same way and
// systems must pay the lookup cost either way.
func (g *Generator) randomKey() string {
	return KeyFor(g.rng.Intn(g.nextKey))
}

// Ops generates n operations.
func (g *Generator) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
