package gdprbench

import (
	"testing"
)

func countKinds(ops []Op) map[OpKind]int {
	m := make(map[OpKind]int)
	for _, op := range ops {
		m[op.Kind]++
	}
	return m
}

func approx(t *testing.T, got, want, n int, label string) {
	t.Helper()
	tol := n / 20 // ±5%
	if got < want-tol || got > want+tol {
		t.Errorf("%s: got %d ops, want ~%d (±%d)", label, got, want, tol)
	}
}

func TestCustomerMix(t *testing.T) {
	g, err := NewGenerator(Customer, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	kinds := countKinds(g.Ops(n))
	approx(t, kinds[OpReadData], n/5, n, "read-data")
	approx(t, kinds[OpUpdateData], n/5, n, "update-data")
	approx(t, kinds[OpDeleteData], n/5, n, "delete-data")
	approx(t, kinds[OpReadMeta], n/5, n, "read-meta")
	approx(t, kinds[OpUpdateMeta], n/5, n, "update-meta")
	if kinds[OpCreate] != 0 || kinds[OpReadByMeta] != 0 {
		t.Errorf("unexpected ops in WCus: %v", kinds)
	}
}

func TestProcessorMix(t *testing.T) {
	g, err := NewGenerator(Processor, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	kinds := countKinds(g.Ops(n))
	approx(t, kinds[OpReadData], n*80/100, n, "read-data")
	approx(t, kinds[OpReadByMeta], n*20/100, n, "read-by-meta")
	if kinds[OpDeleteData] != 0 || kinds[OpCreate] != 0 {
		t.Errorf("unexpected ops in WPro: %v", kinds)
	}
}

func TestControllerMix(t *testing.T) {
	g, err := NewGenerator(Controller, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	kinds := countKinds(g.Ops(n))
	approx(t, kinds[OpCreate], n/4, n, "create")
	approx(t, kinds[OpDeleteData], n/4, n, "delete-data")
	approx(t, kinds[OpUpdateMeta], n/2, n, "update-meta")
}

func TestLoadDeterministic(t *testing.T) {
	g1, _ := NewGenerator(Customer, 100, 7)
	g2, _ := NewGenerator(Customer, 100, 7)
	l1, l2 := g1.Load(100, 1000), g2.Load(100, 1000)
	if len(l1) != 100 || len(l2) != 100 {
		t.Fatalf("load sizes %d %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i].Key != l2[i].Key || string(l1[i].Payload) != string(l2[i].Payload) ||
			l1[i].TTL != l2[i].TTL {
			t.Fatalf("load not deterministic at %d", i)
		}
	}
}

func TestLoadRecordsWellFormed(t *testing.T) {
	g, _ := NewGenerator(Customer, 500, 7)
	for i, r := range g.Load(10, 20) {
		if r.Key != KeyFor(i) {
			t.Fatalf("record %d key = %q", i, r.Key)
		}
		if r.Subject == "" || len(r.Payload) == 0 {
			t.Fatalf("record %d incomplete: %+v", i, r)
		}
		if len(r.Purposes) != 2 || r.Purposes[0] == r.Purposes[1] {
			t.Fatalf("record %d purposes = %v", i, r.Purposes)
		}
		if r.TTL < 10 || r.TTL >= 20 {
			t.Fatalf("record %d TTL = %d", i, r.TTL)
		}
		if len(r.Processors) != 1 {
			t.Fatalf("record %d processors = %v", i, r.Processors)
		}
	}
}

func TestCreateExtendsKeySpace(t *testing.T) {
	g, _ := NewGenerator(Controller, 100, 7)
	maxBefore := g.nextKey
	var sawCreate bool
	for _, op := range g.Ops(200) {
		if op.Kind == OpCreate {
			sawCreate = true
			if op.Key == "" || len(op.Payload) == 0 {
				t.Fatalf("create op incomplete: %+v", op)
			}
		}
	}
	if !sawCreate {
		t.Fatal("no creates in WCon")
	}
	if g.nextKey <= maxBefore {
		t.Fatal("creates did not extend the key space")
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := NewGenerator("bogus", 100, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := NewGenerator(Customer, 0, 1); err == nil {
		t.Fatal("zero records accepted")
	}
}

func TestOpKindString(t *testing.T) {
	if OpCreate.String() != "create" || OpReadByMeta.String() != "read-by-meta" {
		t.Fatal("op names wrong")
	}
}

func TestParseWorkload(t *testing.T) {
	cases := map[string]WorkloadName{
		"wcon": Controller, "WCon": Controller, "controller": Controller,
		"wpro": Processor, "WPRO": Processor, "processor": Processor,
		"wcus": Customer, " wcus ": Customer, "customer": Customer,
	}
	for in, want := range cases {
		got, err := ParseWorkload(in)
		if err != nil || got != want {
			t.Fatalf("ParseWorkload(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseWorkload("ycsb-a"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 || ws[0] != Controller || ws[1] != Processor || ws[2] != Customer {
		t.Fatalf("Workloads() = %v", ws)
	}
	for _, w := range ws {
		if _, err := mixOf(w); err != nil {
			t.Fatalf("workload %v has no mix: %v", w, err)
		}
	}
}
