package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datacase/datacase/internal/storage/lsm"
)

// lockingEngines builds both backends, WAL-less (the contract under
// test is locking, not durability).
func lockingEngines() map[string]func() Engine {
	return map[string]func() Engine{
		"heap": func() Engine { return NewHeap("t", nil) },
		"lsm":  func() Engine { return NewLSM("t", nil, lsm.Options{MemtableFlushEntries: 8}) },
	}
}

// TestEngineConcurrentGetsDoNotSerialize: the contract's read-snapshot
// guarantee, clause (a) — a Get must proceed while a SeqScan holds the
// engine's shared lock, on either backend.
func TestEngineConcurrentGetsDoNotSerialize(t *testing.T) {
	for name, mk := range lockingEngines() {
		t.Run(name, func(t *testing.T) {
			e := mk()
			for i := 0; i < 32; i++ {
				if err := e.Insert([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			scanEntered := make(chan struct{})
			release := make(chan struct{})
			scanDone := make(chan struct{})
			go func() {
				defer close(scanDone)
				first := true
				e.SeqScan(func(_, _ []byte) bool {
					if first {
						first = false
						close(scanEntered)
						<-release
					}
					return true
				})
			}()
			<-scanEntered
			got := make(chan bool, 1)
			go func() {
				_, ok := e.Get([]byte("k31"))
				got <- ok
			}()
			select {
			case ok := <-got:
				if !ok {
					t.Error("Get missed a live key")
				}
			case <-time.After(5 * time.Second):
				t.Error("Get blocked behind an in-flight SeqScan: reads serialize")
			}
			close(release)
			<-scanDone
		})
	}
}

// TestEngineReadSnapshotUnderWrites: clause (b) — concurrent Gets racing
// an updater must always observe one of the values that was current at
// some instant, never a torn or absent one. Run with -race.
func TestEngineReadSnapshotUnderWrites(t *testing.T) {
	for name, mk := range lockingEngines() {
		t.Run(name, func(t *testing.T) {
			e := mk()
			if err := e.Insert([]byte("k"), []byte("v-000")); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						v, ok := e.Get([]byte("k"))
						if !ok {
							t.Error("live key vanished mid-read")
							return
						}
						if len(v) != 5 || v[0] != 'v' {
							t.Errorf("torn read: %q", v)
							return
						}
					}
				}()
			}
			for i := 1; i <= 300; i++ {
				if err := e.Update([]byte("k"), []byte(fmt.Sprintf("v-%03d", i%1000))); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
