package storage

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"github.com/datacase/datacase/internal/cryptox"
	"github.com/datacase/datacase/internal/storage/lsm"
	"github.com/datacase/datacase/internal/storage/mheap"
	"github.com/datacase/datacase/internal/wal"
)

// backendFactories is the registry the conformance suite iterates: one
// constructor per registered backend. A new backend earns the full
// contract suite — including the ForensicScan/Sanitizable
// erase-physicality pair — by adding a row here.
var backendFactories = map[string]func() Engine{
	"heap": func() Engine { return NewHeap("contract:data", wal.New()) },
	"lsm": func() Engine {
		return NewLSM("contract:data", wal.New(), lsm.Options{
			MemtableFlushEntries: 8, // small, so the suite crosses run boundaries
			PurgeWithinOps:       16,
		})
	},
	"mmap": func() Engine {
		return NewMmapWithOptions("contract:data", wal.New(), mheap.Options{
			MaxPages: 64,
			RedoCap:  16384, // small, so the suite crosses redo resets
		})
	},
}

// engines builds one engine per registered backend, each with its own
// group-commit WAL, so the contract suite runs identically over all of
// them.
func engines(t *testing.T) map[string]Engine {
	t.Helper()
	out := make(map[string]Engine, len(backendFactories))
	for name, mk := range backendFactories {
		out[name] = mk()
	}
	return out
}

// TestEngineContract drives the shared CRUD/scan/WAL contract over
// every registered backend.
func TestEngineContract(t *testing.T) {
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			if e.Name() != "contract:data" {
				t.Fatalf("Name = %q", e.Name())
			}
			if e.Log() == nil {
				t.Fatal("engine lost its WAL")
			}
			// Insert + duplicate rejection.
			if err := e.Insert([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := e.Insert([]byte("k1"), []byte("again")); !errors.Is(err, ErrKeyExists) {
				t.Fatalf("duplicate insert: %v", err)
			}
			// Update present/absent.
			if err := e.Update([]byte("k1"), []byte("v1b")); err != nil {
				t.Fatal(err)
			}
			if err := e.Update([]byte("missing"), nil); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("update absent: %v", err)
			}
			// Upsert both ways.
			if err := e.Upsert([]byte("k1"), []byte("v1c")); err != nil {
				t.Fatal(err)
			}
			if err := e.Upsert([]byte("k2"), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			if v, ok := e.Get([]byte("k1")); !ok || !bytes.Equal(v, []byte("v1c")) {
				t.Fatalf("Get(k1) = %q,%v", v, ok)
			}
			// Delete present/absent; Has flips.
			if err := e.Delete([]byte("k2")); err != nil {
				t.Fatal(err)
			}
			if err := e.Delete([]byte("k2")); !errors.Is(err, ErrKeyNotFound) {
				t.Fatalf("delete absent: %v", err)
			}
			if e.Has([]byte("k2")) || !e.Has([]byte("k1")) {
				t.Fatal("Has disagrees with mutations")
			}
			// Populate enough to cross flush boundaries on the LSM, then
			// scan: every live key exactly once.
			want := map[string]string{"k1": "v1c"}
			for i := 0; i < 40; i++ {
				k, v := fmt.Sprintf("bulk-%02d", i), fmt.Sprintf("val-%02d", i)
				if err := e.Insert([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				want[k] = v
			}
			got := map[string]string{}
			e.SeqScan(func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("SeqScan saw %d records, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("SeqScan[%q] = %q, want %q", k, got[k], v)
				}
			}
			if e.Len() != len(want) {
				t.Fatalf("Len = %d, want %d", e.Len(), len(want))
			}
			// Early-stop scan.
			n := 0
			e.SeqScan(func(_, _ []byte) bool { n++; return n < 3 })
			if n != 3 {
				t.Fatalf("early-stop scan visited %d", n)
			}
			// Work counters moved.
			st := e.Stats()
			if st.Inserts == 0 || st.Updates == 0 || st.Deletes == 0 || st.Scans == 0 {
				t.Fatalf("counters did not move: %+v", st)
			}
			// Space: live entries accounted, total positive.
			sp := e.Space()
			if sp.LiveEntries != len(want) || sp.TotalBytes <= 0 {
				t.Fatalf("space = %+v, want %d live", sp, len(want))
			}
			// The WAL saw every mutation in the same vocabulary.
			var inserts, updates, deletes int
			e.Log().Replay(0, func(r wal.Record) bool {
				switch r.Type {
				case wal.RecInsert:
					inserts++
				case wal.RecUpdate:
					updates++
				case wal.RecDelete:
					deletes++
				}
				return true
			})
			if inserts != 42 || updates != 2 || deletes != 1 {
				t.Fatalf("WAL saw %d/%d/%d insert/update/delete records", inserts, updates, deletes)
			}
		})
	}
}

// TestEngineBulkLoad: loads into an empty engine, rejects non-empty
// targets and duplicate keys, and writes no WAL records.
func TestEngineBulkLoad(t *testing.T) {
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			rows := [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}}
			i := 0
			n, err := e.BulkLoad(func() ([]byte, []byte, bool) {
				if i >= len(rows) {
					return nil, nil, false
				}
				r := rows[i]
				i++
				return []byte(r[0]), []byte(r[1]), true
			})
			if err != nil || n != 3 {
				t.Fatalf("BulkLoad = %d, %v", n, err)
			}
			if e.Log().Len() != 0 {
				t.Fatalf("BulkLoad wrote %d WAL records", e.Log().Len())
			}
			if v, ok := e.Get([]byte("b")); !ok || string(v) != "2" {
				t.Fatalf("Get(b) = %q,%v", v, ok)
			}
			if _, err := e.BulkLoad(func() ([]byte, []byte, bool) { return nil, nil, false }); err == nil {
				t.Fatal("BulkLoad into a non-empty engine succeeded")
			}
		})
	}
}

// TestEngineForensics: both backends physically retain erased bytes
// until their reclamation runs — and both reclamations work through
// the capability interfaces.
func TestEngineForensics(t *testing.T) {
	secret := []byte("THE-SECRET-PAYLOAD")
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			if err := e.Insert([]byte("victim"), secret); err != nil {
				t.Fatal(err)
			}
			if l, ok := e.(*LSM); ok {
				// Push the value into a run: a tombstone over a
				// memtable-resident value overwrites it in place, so the
				// retention hazard only exists for flushed data.
				l.Store().Flush()
			}
			if err := e.Delete([]byte("victim")); err != nil {
				t.Fatal(err)
			}
			if !e.ForensicScan(secret) {
				t.Fatal("erased bytes should be physically resident before reclamation (the paper's hazard)")
			}
			switch eng := e.(type) {
			case Vacuumer:
				if eng.DeadRatio() == 0 {
					t.Fatal("DeadRatio 0 with a dead tuple present")
				}
				if n := eng.VacuumLazy(); n != 1 {
					t.Fatalf("VacuumLazy reclaimed %d", n)
				}
			case Purger:
				eng.RegisterPurge([]byte("victim"))
				if eng.PendingPurges() != 1 {
					t.Fatal("obligation not pending")
				}
				if n := eng.ForcePurge(); n != 1 {
					t.Fatalf("ForcePurge discharged %d", n)
				}
			default:
				t.Fatalf("engine %T has no reclamation capability", e)
			}
			if e.ForensicScan(secret) {
				t.Fatal("erased bytes survive reclamation")
			}
			// Both backends sanitize (the permanent-delete grounding).
			san, ok := e.(cryptox.Sanitizable)
			if !ok {
				t.Fatalf("engine %T is not sanitizable", e)
			}
			san.SanitizePass(0x00)
			if !san.VerifySanitized(0x00) {
				t.Fatal("sanitize verification failed")
			}
		})
	}
}

// TestLSMRegisterPurgeOnLiveKeyLogsDelete: registering a purge for a
// still-live key tombstones it, and on a WAL-backed engine that
// implicit delete must reach the log — otherwise replay would
// resurrect the key from its last value record.
func TestLSMRegisterPurgeOnLiveKeyLogsDelete(t *testing.T) {
	e := NewLSM("t", wal.New(), lsm.Options{})
	if err := e.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	e.RegisterPurge([]byte("k"))
	if e.Has([]byte("k")) {
		t.Fatal("key live after purge registration")
	}
	// The log must net out to "gone": last record for k is a delete.
	live := false
	e.Log().Replay(0, func(r wal.Record) bool {
		if string(r.Key) != "k" {
			return true
		}
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate:
			live = true
		case wal.RecDelete:
			live = false
		}
		return true
	})
	if live {
		t.Fatal("WAL still nets out to a live value: replay would resurrect the purged key")
	}
	// Registering for an already-deleted key adds no second delete.
	deletesBefore := e.Stats().Deletes
	e.RegisterPurge([]byte("k"))
	if got := e.Stats().Deletes; got != deletesBefore {
		t.Fatalf("re-registration wrote %d extra deletes", got-deletesBefore)
	}
}

// TestHeapVacuumFullThroughCapability covers the full-rewrite path and
// WrapHeap.
func TestHeapVacuumFullThroughCapability(t *testing.T) {
	h := NewHeap("t", nil)
	for i := 0; i < 10; i++ {
		if err := h.Insert([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := h.Delete([]byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := h.VacuumFullRewrite(); n != 5 {
		t.Fatalf("VacuumFullRewrite reclaimed %d", n)
	}
	w := WrapHeap(h.Table)
	if w.Len() != 5 {
		t.Fatalf("wrapped len = %d", w.Len())
	}
	st := h.Stats()
	if st.MaintenanceRuns != 1 || st.EntriesReclaimed != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMmapRegionRoundTrip: a region snapshot re-attaches to the same
// logical state — the engine-level half of crash recovery — and the
// re-attached engine reports the WAL position its pages reflect.
func TestMmapRegionRoundTrip(t *testing.T) {
	log := wal.New()
	e := NewMmap("t", log)
	for i := 0; i < 20; i++ {
		if err := e.Insert([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Update([]byte("k03"), []byte("v03b")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete([]byte("k07")); err != nil {
		t.Fatal(err)
	}
	lsn := e.AppliedLSN()
	if lsn == 0 {
		t.Fatal("AppliedLSN did not advance")
	}
	re, err := AttachMmap("t", wal.New(), e.RegionSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 19 {
		t.Fatalf("re-attached Len = %d, want 19", re.Len())
	}
	if v, ok := re.Get([]byte("k03")); !ok || string(v) != "v03b" {
		t.Fatalf("Get(k03) = %q,%v after attach", v, ok)
	}
	if re.Has([]byte("k07")) {
		t.Fatal("deleted key resurrected by attach")
	}
	if re.AppliedLSN() != lsn {
		t.Fatalf("AppliedLSN = %d after attach, want %d", re.AppliedLSN(), lsn)
	}
	// CheckpointRegion reports the pages dirtied since the last snapshot
	// and resets the counter.
	if n := re.CheckpointRegion(); n != 0 {
		// attach itself dirties nothing until a mutation lands
		t.Fatalf("CheckpointRegion on fresh attach = %d dirty pages", n)
	}
	if err := re.Insert([]byte("post"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if n := re.CheckpointRegion(); n == 0 {
		t.Fatal("CheckpointRegion missed a dirtied page")
	}
}

// TestLSMScanOrder: the LSM engine scans in key order (its documented
// backend-specific order).
func TestLSMScanOrder(t *testing.T) {
	e := NewLSM("t", nil, lsm.Options{})
	for _, k := range []string{"c", "a", "b"} {
		if err := e.Insert([]byte(k), []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	e.SeqScan(func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatalf("LSM scan order: %v", got)
	}
	if e.Store() == nil {
		t.Fatal("Store accessor lost the backend")
	}
}
