package mheap

import "bytes"

// Physical-layer inspection and sanitization for the erasure
// groundings. Because the region IS the durable state, these operate on
// the raw bytes directly: a pattern that survives anywhere — a dead
// tuple, a compaction leftover, a redo entry for a since-deleted record
// — is exactly the "illegally, physically retained" hazard the paper
// cites, and sanitization must reach all of it.

// ForensicScan reports whether the byte pattern occurs anywhere in the
// raw region: page data, freed space, and the embedded redo log alike.
func (t *Table) ForensicScan(pattern []byte) bool {
	if len(pattern) == 0 {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return bytes.Contains(t.region, pattern)
}

// ForensicDeadTuples returns copies of every dead-but-present tuple —
// what a disk forensics pass would recover after a DELETE without
// VACUUM.
func (t *Table) ForensicDeadTuples() (keys, values [][]byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pi := 0; pi < t.nPages(); pi++ {
		for s := 0; s < t.pteNSlots(pi); s++ {
			off, _, flag := t.slot(pi, s)
			if flag != slotDead {
				continue
			}
			k, v := t.tuple(pi, off)
			keys = append(keys, append([]byte(nil), k...))
			values = append(values, append([]byte(nil), v...))
		}
	}
	return keys, values
}

// SanitizePass overwrites every non-live byte of the data surface with
// the given pattern and returns the number of bytes overwritten: page
// bytes outside live tuples (including dead tuples' bytes) and the
// whole redo area, whose entries can carry deleted records' payloads.
// Slot directories and page-table/shadow metadata hold only offsets and
// counts, never record bytes, and stay untouched.
func (t *Table) SanitizePass(pattern byte) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for i := t.redoOff(); i < t.redoOff()+t.redoCap; i++ {
		t.region[i] = pattern
		n++
	}
	t.setRedoLen(0)
	for pi := 0; pi < t.nPages(); pi++ {
		live := t.livePageMask(pi)
		po := t.pageOff(pi)
		for b := 0; b < PageSize; b++ {
			if !live[b] {
				t.region[po+b] = pattern
				n++
			}
		}
	}
	return n
}

// VerifySanitized reports whether every non-live byte of the data
// surface equals the given pattern — the verification step of a
// sanitization procedure. Unscrubbed redo entries fail it by design:
// their bytes are exactly the kind of remnant it exists to catch.
func (t *Table) VerifySanitized(pattern byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i := t.redoOff(); i < t.redoOff()+t.redoCap; i++ {
		if t.region[i] != pattern {
			return false
		}
	}
	for pi := 0; pi < t.nPages(); pi++ {
		live := t.livePageMask(pi)
		po := t.pageOff(pi)
		for b := 0; b < PageSize; b++ {
			if !live[b] && t.region[po+b] != pattern {
				return false
			}
		}
	}
	return true
}

// livePageMask marks the bytes of page pi that must survive
// sanitization: the slot directory (metadata) and live tuples' data.
func (t *Table) livePageMask(pi int) []bool {
	live := make([]bool, PageSize)
	nSlots := t.pteNSlots(pi)
	for b := 0; b < nSlots*slotSize; b++ {
		live[b] = true
	}
	for s := 0; s < nSlots; s++ {
		off, size, flag := t.slot(pi, s)
		if flag != slotLive {
			continue
		}
		for b := off; b < off+size && b < PageSize; b++ {
			live[b] = true
		}
	}
	return live
}
