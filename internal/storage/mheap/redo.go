package mheap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// The embedded redo log makes each mutation an in-place transaction on
// the region: the entry is written first, then the commit marker
// (header redoLen) advances over it, then the page is mutated and the
// applied cursors (appliedSeq/appliedLSN) move. A crash between any two
// steps is recoverable: an entry the marker never covered is invisible,
// a covered-but-unapplied entry is replayed at attach, and a torn entry
// fails its CRC and truncates the tail back to the last good boundary —
// i.e. the region always re-attaches to exactly the pre-op or post-op
// state.
//
// Entry layout (big-endian):
//
//	[magic u16][op u8][seq u64][lsn u64][keyLen u16][valLen u32]
//	[key][value][crc32 u32 over everything before it]

const (
	redoMagic       = 0x5244 // "RD"
	redoHeaderSize  = 2 + 1 + 8 + 8 + 2 + 4
	redoTrailerSize = 4
)

// Redo ops.
const (
	opInsert = 1
	opUpdate = 2
	opDelete = 3
)

var errRedoTorn = errors.New("mheap: torn or corrupt redo entry")

type redoEntry struct {
	op  int
	seq uint64
	lsn uint64
	key []byte // aliases the region
	val []byte // aliases the region
}

func redoEntrySize(keyLen, valLen int) int {
	return redoHeaderSize + keyLen + valLen + redoTrailerSize
}

// writeRedo appends one committed redo entry to the embedded log. When
// the area cannot absorb the entry it is reset first: every resident
// entry is already applied to pages (apply happens in the same critical
// section as the write), so dropping them loses nothing.
func (t *Table) writeRedo(op int, seq, lsn uint64, key, value []byte) {
	need := redoEntrySize(len(key), len(value))
	if t.redoLen()+need > t.redoCap {
		t.scrubRedoLocked()
	}
	off := t.redoOff() + t.redoLen()
	encodeRedo(t.region[off:off+need], op, seq, lsn, key, value)
	// Commit marker: the entry exists only once redoLen covers it.
	t.setRedoLen(t.redoLen() + need)
	t.stats.redoEntries.Add(1)
}

// encodeRedo lays out one entry in dst, which must be exactly
// redoEntrySize(len(key), len(value)) bytes.
func encodeRedo(dst []byte, op int, seq, lsn uint64, key, value []byte) {
	binary.BigEndian.PutUint16(dst[0:], redoMagic)
	dst[2] = byte(op)
	binary.BigEndian.PutUint64(dst[3:], seq)
	binary.BigEndian.PutUint64(dst[11:], lsn)
	binary.BigEndian.PutUint16(dst[19:], uint16(len(key)))
	binary.BigEndian.PutUint32(dst[21:], uint32(len(value)))
	copy(dst[redoHeaderSize:], key)
	copy(dst[redoHeaderSize+len(key):], value)
	crc := crc32.ChecksumIEEE(dst[:len(dst)-redoTrailerSize])
	binary.BigEndian.PutUint32(dst[len(dst)-redoTrailerSize:], crc)
}

// decodeRedo parses one entry from the front of buf. Every field is
// bounds-checked before use so arbitrary garbage (a torn tail, fuzz
// input) yields errRedoTorn rather than a panic.
func decodeRedo(buf []byte) (redoEntry, int, error) {
	var e redoEntry
	if len(buf) < redoHeaderSize+redoTrailerSize {
		return e, 0, errRedoTorn
	}
	if binary.BigEndian.Uint16(buf[0:]) != redoMagic {
		return e, 0, errRedoTorn
	}
	e.op = int(buf[2])
	if e.op < opInsert || e.op > opDelete {
		return e, 0, errRedoTorn
	}
	e.seq = binary.BigEndian.Uint64(buf[3:])
	e.lsn = binary.BigEndian.Uint64(buf[11:])
	kl := int(binary.BigEndian.Uint16(buf[19:]))
	vl := int(binary.BigEndian.Uint32(buf[21:]))
	if tupleOverhead+kl+vl > maxTupleSize {
		return e, 0, errRedoTorn
	}
	n := redoEntrySize(kl, vl)
	if n > len(buf) {
		return e, 0, errRedoTorn
	}
	want := binary.BigEndian.Uint32(buf[n-redoTrailerSize:])
	if crc32.ChecksumIEEE(buf[:n-redoTrailerSize]) != want {
		return e, 0, errRedoTorn
	}
	e.key = buf[redoHeaderSize : redoHeaderSize+kl]
	e.val = buf[redoHeaderSize+kl : redoHeaderSize+kl+vl]
	return e, n, nil
}

// replayRedo walks the committed redo window at attach time and applies
// every entry newer than the region's applied cursor. The first torn or
// corrupt entry ends the walk and truncates the commit marker back to
// the last good boundary.
func (t *Table) replayRedo() {
	off := 0
	redoLen := t.redoLen()
	for off < redoLen {
		e, n, err := decodeRedo(t.region[t.redoOff()+off : t.redoOff()+redoLen])
		if err != nil {
			t.setRedoLen(off)
			// Zero the discarded tail so a half-written entry's payload
			// bytes do not outlive the transaction they belonged to.
			clear(t.region[t.redoOff()+off : t.redoOff()+redoLen])
			return
		}
		off += n
		if e.seq <= t.appliedSeq() {
			continue
		}
		t.replayApply(e)
		t.setAppliedSeq(e.seq)
		if e.lsn != 0 {
			t.setAppliedLSN(e.lsn)
		}
		t.stats.redoReplayed.Add(1)
	}
}

// replayApply applies one redo entry to the pages idempotently: a crash
// after the page mutation but before the applied cursor advanced means
// replay sees work that is already done, so every op checks the current
// state first.
func (t *Table) replayApply(e redoEntry) {
	cur, exists := t.index[string(e.key)]
	switch e.op {
	case opInsert, opUpdate:
		if exists {
			_, v := t.tupleAt(cur)
			if bytes.Equal(v, e.val) {
				return // already applied
			}
			t.kill(cur)
		}
		id := t.place(e.key, e.val)
		t.index[string(e.key)] = id
	case opDelete:
		if exists {
			t.kill(cur)
			delete(t.index, string(e.key))
		}
	}
}

func (t *Table) tupleAt(id tid) (key, value []byte) {
	off, _, _ := t.slot(id.page(), id.slot())
	return t.tuple(id.page(), off)
}

// scrubRedoLocked zeroes the committed redo window and resets the
// commit marker. Callers guarantee every resident entry is applied
// (always true outside a mutation's critical section). Vacuum and
// sanitization route through here so that a record's redo entries die
// with its tuple bytes — physical erasure covers the whole region.
func (t *Table) scrubRedoLocked() {
	if n := t.redoLen(); n > 0 {
		clear(t.region[t.redoOff() : t.redoOff()+n])
		t.setRedoLen(0)
		t.stats.redoResets.Add(1)
	}
}

// redoUtilization reports committed redo bytes (diagnostics/tests).
func (t *Table) redoUtilization() (used, capacity int) { return t.redoLen(), t.redoCap }
