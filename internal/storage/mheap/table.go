package mheap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/datacase/datacase/internal/wal"
)

// Common errors.
var (
	// ErrKeyExists is returned by Insert when a live tuple with the key
	// already exists.
	ErrKeyExists = errors.New("mheap: key already exists")
	// ErrKeyNotFound is returned by Update/Delete on absent keys.
	ErrKeyNotFound = errors.New("mheap: key not found")
)

// Counters accumulate the physical work a table has performed.
type Counters struct {
	TuplesInserted  uint64
	TuplesUpdated   uint64
	TuplesDeleted   uint64
	PagesAllocated  uint64
	SeqScans        uint64
	PagesScanned    uint64
	TuplesScanned   uint64
	DeadSkipped     uint64
	IndexLookups    uint64
	VacuumRuns      uint64
	VacuumFullRuns  uint64
	TuplesReclaimed uint64
	// RedoEntries/RedoResets/RedoReplayed describe the embedded redo
	// log: entries committed, area resets (checkpoint or overflow), and
	// entries re-applied at attach time.
	RedoEntries  uint64
	RedoResets   uint64
	RedoReplayed uint64
}

type counters struct {
	tuplesInserted  atomic.Uint64
	tuplesUpdated   atomic.Uint64
	tuplesDeleted   atomic.Uint64
	pagesAllocated  atomic.Uint64
	seqScans        atomic.Uint64
	pagesScanned    atomic.Uint64
	tuplesScanned   atomic.Uint64
	deadSkipped     atomic.Uint64
	indexLookups    atomic.Uint64
	vacuumRuns      atomic.Uint64
	vacuumFullRuns  atomic.Uint64
	tuplesReclaimed atomic.Uint64
	redoEntries     atomic.Uint64
	redoResets      atomic.Uint64
	redoReplayed    atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		TuplesInserted:  c.tuplesInserted.Load(),
		TuplesUpdated:   c.tuplesUpdated.Load(),
		TuplesDeleted:   c.tuplesDeleted.Load(),
		PagesAllocated:  c.pagesAllocated.Load(),
		SeqScans:        c.seqScans.Load(),
		PagesScanned:    c.pagesScanned.Load(),
		TuplesScanned:   c.tuplesScanned.Load(),
		DeadSkipped:     c.deadSkipped.Load(),
		IndexLookups:    c.indexLookups.Load(),
		VacuumRuns:      c.vacuumRuns.Load(),
		VacuumFullRuns:  c.vacuumFullRuns.Load(),
		TuplesReclaimed: c.tuplesReclaimed.Load(),
		RedoEntries:     c.redoEntries.Load(),
		RedoResets:      c.redoResets.Load(),
		RedoReplayed:    c.redoReplayed.Load(),
	}
}

// Options sizes the region. The zero value picks defaults.
type Options struct {
	// MaxPages caps the page table (default 8192 pages = 64 MiB).
	MaxPages int
	// RedoCap sizes the embedded redo area (default 1 MiB, min 16 KiB).
	RedoCap int
}

func (o Options) withDefaults() Options {
	if o.MaxPages <= 0 {
		o.MaxPages = defaultMaxPages
	}
	if o.RedoCap < minRedoCap {
		o.RedoCap = defaultRedoCap
	}
	return o
}

// Table is a durable-region heap table with a hash index on the key.
// It is safe for concurrent use (one RWMutex serializes writers; reads
// share). Everything durable lives in the region; index, FSM, and
// counters are cheap in-memory caches rebuilt on Attach.
type Table struct {
	name string

	mu     sync.RWMutex
	region []byte

	maxPages int
	redoCap  int

	index  map[string]tid
	fsm    []int
	fsmSet map[int]bool
	// dirty is the visibility-map analogue: pages known to contain dead
	// tuples, so lazy VACUUM visits only them.
	dirty map[int]bool
	// dirtySinceCkpt tracks pages touched since the last page-table
	// snapshot — the O(dirty) cost a real msync would pay.
	dirtySinceCkpt map[int]bool

	liveTuples, deadTuples int
	liveBytes, deadBytes   int64

	log   *wal.Log
	stats counters
}

// New returns an empty table backed by a fresh region. A nil log
// disables write-ahead logging.
func New(name string, log *wal.Log, opts Options) *Table {
	opts = opts.withDefaults()
	t := &Table{
		name:           name,
		maxPages:       opts.MaxPages,
		redoCap:        opts.RedoCap,
		index:          make(map[string]tid),
		fsmSet:         make(map[int]bool),
		dirty:          make(map[int]bool),
		dirtySinceCkpt: make(map[int]bool),
		log:            log,
	}
	t.region = make([]byte, t.pagesOff())
	t.pu32(offMagic, regionMagic)
	t.pu32(offVersion, regionVersion)
	t.pu32(offPageSize, PageSize)
	t.pu32(offMaxPages, uint32(t.maxPages))
	t.pu32(offRedoCap, uint32(t.redoCap))
	return t
}

// Attach re-opens a table from a region snapshot: validate the header,
// repair any insane page-table entry from the shadow snapshot, rebuild
// the index and FSM from the pages, then replay the committed redo tail
// past the region's applied cursor. The table takes ownership of the
// region slice.
func Attach(name string, log *wal.Log, region []byte) (*Table, error) {
	if len(region) < headerSize {
		return nil, fmt.Errorf("mheap: region too small (%d bytes)", len(region))
	}
	if m := binary.BigEndian.Uint32(region[offMagic:]); m != regionMagic {
		return nil, fmt.Errorf("mheap: bad region magic %#x", m)
	}
	if v := binary.BigEndian.Uint32(region[offVersion:]); v != regionVersion {
		return nil, fmt.Errorf("mheap: unsupported region version %d", v)
	}
	if ps := binary.BigEndian.Uint32(region[offPageSize:]); ps != PageSize {
		return nil, fmt.Errorf("mheap: region page size %d != %d", ps, PageSize)
	}
	t := &Table{
		name:           name,
		maxPages:       int(binary.BigEndian.Uint32(region[offMaxPages:])),
		redoCap:        int(binary.BigEndian.Uint32(region[offRedoCap:])),
		index:          make(map[string]tid),
		fsmSet:         make(map[int]bool),
		dirty:          make(map[int]bool),
		dirtySinceCkpt: make(map[int]bool),
		log:            log,
		region:         region,
	}
	if t.maxPages <= 0 || t.redoCap < minRedoCap {
		return nil, fmt.Errorf("mheap: corrupt region geometry (maxPages=%d redoCap=%d)", t.maxPages, t.redoCap)
	}
	nPages := int(binary.BigEndian.Uint32(region[offNPages:]))
	if nPages < 0 || nPages > t.maxPages {
		return nil, fmt.Errorf("mheap: corrupt page count %d (max %d)", nPages, t.maxPages)
	}
	want := t.pagesOff() + nPages*PageSize
	if len(region) < want {
		return nil, fmt.Errorf("mheap: region truncated (%d bytes, want %d)", len(region), want)
	}
	t.region = region[:want]
	if t.redoLen() > t.redoCap {
		t.setRedoLen(t.redoCap)
	}
	t.repairPageTable()
	t.rebuild()
	t.replayRedo()
	return t, nil
}

// repairPageTable restores any page-table entry that fails its sanity
// check from the shadow (checkpoint-time) snapshot — the double-buffer
// discipline that makes a torn page-table write survivable. Entries the
// shadow also cannot vouch for reset to an empty page.
func (t *Table) repairPageTable() {
	for pi := 0; pi < t.nPages(); pi++ {
		if t.pteValid(pi) {
			continue
		}
		shadow := t.region[t.sptOff()+pi*pteSize : t.sptOff()+(pi+1)*pteSize]
		copy(t.region[t.pteOff(pi):t.pteOff(pi)+pteSize], shadow)
		if !t.pteValid(pi) {
			t.setPTE(pi, PageSize, 0, 0)
		}
	}
}

// rebuild reconstructs the in-memory index, FSM, and footprint counters
// from the page headers. Only keys are decoded — values are never
// touched, which is what makes re-attach O(live keys) instead of
// O(data bytes).
func (t *Table) rebuild() {
	for pi := 0; pi < t.nPages(); pi++ {
		for s := 0; s < t.pteNSlots(pi); s++ {
			off, size, flag := t.slot(pi, s)
			switch flag {
			case slotLive:
				k, _ := t.tuple(pi, off)
				t.index[string(k)] = makeTID(pi, s)
				t.liveTuples++
				t.liveBytes += int64(size)
			case slotDead:
				t.deadTuples++
				t.deadBytes += int64(size)
				t.dirty[pi] = true
			}
		}
		if t.pageFreeBytes(pi) >= 64 && !t.fsmSet[pi] {
			t.fsmSet[pi] = true
			t.fsm = append(t.fsm, pi)
		}
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Log returns the table's write-ahead log (nil when logging is
// disabled).
func (t *Table) Log() *wal.Log { return t.log }

// commit runs the redo transaction for one mutation: entry, commit
// marker, page apply, applied cursors. Caller holds mu and has already
// WAL-logged the op (lsn 0 when logging is disabled).
func (t *Table) commit(op int, lsn wal.LSN, key, value []byte) {
	seq := t.appliedSeq() + 1
	t.writeRedo(op, seq, uint64(lsn), key, value)
	switch op {
	case opInsert:
		id := t.place(key, value)
		t.index[string(key)] = id
	case opUpdate:
		t.kill(t.index[string(key)])
		id := t.place(key, value)
		t.index[string(key)] = id
	case opDelete:
		t.kill(t.index[string(key)])
		delete(t.index, string(key))
	}
	t.setAppliedSeq(seq)
	if lsn != 0 {
		t.setAppliedLSN(uint64(lsn))
	}
}

// Insert adds a new tuple. It fails with ErrKeyExists if a live tuple
// with the key exists.
func (t *Table) Insert(key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.index[string(key)]; ok {
		return fmt.Errorf("%w: %q", ErrKeyExists, key)
	}
	if err := t.ensureSpace(1, tupleOverhead+len(key)+len(value)); err != nil {
		return err
	}
	var lsn wal.LSN
	if t.log != nil {
		lsn = t.log.Append(wal.RecInsert, key, value)
	}
	t.commit(opInsert, lsn, key, value)
	t.stats.tuplesInserted.Add(1)
	return nil
}

// InsertBatch adds N new tuples under one lock acquisition and one WAL
// group submission. All-or-nothing: every key is checked against the
// index (and its predecessors in the batch) and the region's capacity
// before any entry is logged or placed.
func (t *Table) InsertBatch(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("mheap: InsertBatch keys/values length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	maxNeed := 0
	for i, k := range keys {
		if _, ok := t.index[string(k)]; ok {
			return fmt.Errorf("%w: %q", ErrKeyExists, k)
		}
		for j := 0; j < i; j++ {
			if string(keys[j]) == string(k) {
				return fmt.Errorf("%w: %q", ErrKeyExists, k)
			}
		}
		if need := tupleOverhead + len(k) + len(values[i]); need > maxNeed {
			maxNeed = need
		}
	}
	if err := t.ensureSpace(len(keys), maxNeed); err != nil {
		return err
	}
	var first wal.LSN
	if t.log != nil {
		first, _ = t.log.AppendBatch(wal.RecInsert, keys, values)
	}
	for i, k := range keys {
		var lsn wal.LSN
		if t.log != nil {
			lsn = first + wal.LSN(i)
		}
		t.commit(opInsert, lsn, k, values[i])
	}
	t.stats.tuplesInserted.Add(uint64(len(keys)))
	return nil
}

// Update replaces the value under key MVCC-style: the old version is
// marked dead in place and a new version is written elsewhere. Without
// a vacuum the old version's bytes stay resident in the region.
func (t *Table) Update(key, value []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.index[string(key)]; !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	if err := t.ensureSpace(1, tupleOverhead+len(key)+len(value)); err != nil {
		return err
	}
	var lsn wal.LSN
	if t.log != nil {
		lsn = t.log.Append(wal.RecUpdate, key, value)
	}
	t.commit(opUpdate, lsn, key, value)
	t.stats.tuplesUpdated.Add(1)
	return nil
}

// Upsert inserts or updates.
func (t *Table) Upsert(key, value []byte) error {
	t.mu.RLock()
	_, has := t.index[string(key)]
	t.mu.RUnlock()
	if has {
		return t.Update(key, value)
	}
	err := t.Insert(key, value)
	if errors.Is(err, ErrKeyExists) {
		return t.Update(key, value)
	}
	return err
}

// Delete marks the tuple dead: the index entry goes away but the tuple
// bytes — and its redo entries — remain in the region until a vacuum.
func (t *Table) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.index[string(key)]; !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	var lsn wal.LSN
	if t.log != nil {
		lsn = t.log.Append(wal.RecDelete, key, nil)
	}
	t.commit(opDelete, lsn, key, nil)
	t.stats.tuplesDeleted.Add(1)
	return nil
}

// BulkLoad fills an empty table from an iterator without per-row WAL or
// redo records: the recovery path restores checkpoint/reshard images
// through it and the region bytes are durable the moment they land.
func (t *Table) BulkLoad(next func() (key, value []byte, ok bool)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.index) > 0 {
		return 0, fmt.Errorf("mheap: BulkLoad into non-empty table %q", t.name)
	}
	n := 0
	for {
		k, v, ok := next()
		if !ok {
			return n, nil
		}
		if _, dup := t.index[string(k)]; dup {
			return n, fmt.Errorf("%w: %q", ErrKeyExists, k)
		}
		if err := t.ensureSpace(1, tupleOverhead+len(k)+len(v)); err != nil {
			return n, err
		}
		id := t.place(k, v)
		t.index[string(k)] = id
		t.stats.tuplesInserted.Add(1)
		n++
	}
}

// Get returns a copy of the value under key.
func (t *Table) Get(key []byte) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.stats.indexLookups.Add(1)
	id, ok := t.index[string(key)]
	if !ok {
		return nil, false
	}
	_, v := t.tupleAt(id)
	return append([]byte(nil), v...), true
}

// Has reports whether a live tuple with the key exists.
func (t *Table) Has(key []byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.index[string(key)]
	return ok
}

// SeqScan visits every live tuple in physical order until fn returns
// false. Dead tuples are skipped, but skipping them costs work. The
// key/value slices passed to fn alias region memory and must not be
// retained.
func (t *Table) SeqScan(fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var pages, tuples, dead uint64
	defer func() {
		t.stats.seqScans.Add(1)
		t.stats.pagesScanned.Add(pages)
		t.stats.tuplesScanned.Add(tuples)
		t.stats.deadSkipped.Add(dead)
	}()
	for pi := 0; pi < t.nPages(); pi++ {
		pages++
		for s := 0; s < t.pteNSlots(pi); s++ {
			off, _, flag := t.slot(pi, s)
			if flag == slotUnused {
				continue
			}
			tuples++
			if flag == slotDead {
				dead++
				continue
			}
			k, v := t.tuple(pi, off)
			if !fn(k, v) {
				return
			}
		}
	}
}

// Len returns the number of live tuples.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.index)
}

// Stats returns a snapshot of the work counters.
func (t *Table) Stats() Counters { return t.stats.snapshot() }

// SpaceStats describes the physical footprint of the table.
type SpaceStats struct {
	Pages      int
	LiveTuples int
	DeadTuples int
	LiveBytes  int64
	DeadBytes  int64
	// TotalBytes is the full region footprint: header, page tables,
	// redo area, and pages.
	TotalBytes int64
	IndexBytes int64
}

// Space returns the physical footprint.
func (t *Table) Space() SpaceStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return SpaceStats{
		Pages:      t.nPages(),
		LiveTuples: t.liveTuples,
		DeadTuples: t.deadTuples,
		LiveBytes:  t.liveBytes,
		DeadBytes:  t.deadBytes,
		TotalBytes: int64(len(t.region)),
		IndexBytes: int64(len(t.index)) * 48,
	}
}

// DeadRatio returns dead/(live+dead) tuples, or 0 for an empty table.
func (t *Table) DeadRatio() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := t.liveTuples + t.deadTuples
	if total == 0 {
		return 0
	}
	return float64(t.deadTuples) / float64(total)
}

// VacuumStats reports what a vacuum pass accomplished.
type VacuumStats struct {
	TuplesReclaimed int
	PagesVisited    int
	BytesReclaimed  int64
}

// Vacuum is the lazy VACUUM: it visits only pages known to hold dead
// tuples, compacts each in place (zeroing the reclaimed range), records
// reusable space in the FSM, and scrubs the applied redo window so a
// reclaimed record's redo entries die with its tuple bytes.
func (t *Table) Vacuum() VacuumStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var vs VacuumStats
	for pi := range t.dirty {
		vs.PagesVisited++
		n, bytesFreed := t.compactPage(pi)
		vs.TuplesReclaimed += n
		vs.BytesReclaimed += bytesFreed
		if t.pageFreeBytes(pi) >= 64 && !t.fsmSet[pi] {
			t.fsmSet[pi] = true
			t.fsm = append(t.fsm, pi)
		}
	}
	clear(t.dirty)
	t.scrubRedoLocked()
	t.stats.vacuumRuns.Add(1)
	t.stats.tuplesReclaimed.Add(uint64(vs.TuplesReclaimed))
	if t.log != nil {
		t.log.Append(wal.RecVacuum, []byte(t.name), nil)
	}
	return vs
}

// compactPage slides live tuples toward the page end, zeroes the
// reclaimed range, and turns dead slots unused. Slot numbers are
// preserved so index TIDs for live tuples stay valid. Caller holds mu.
func (t *Table) compactPage(pi int) (reclaimed int, bytesFreed int64) {
	nSlots := t.pteNSlots(pi)
	// Live slots in order of decreasing offset, so sliding each toward
	// the page end never overwrites an unmoved tuple.
	order := make([]int, 0, nSlots)
	for s := 0; s < nSlots; s++ {
		if _, _, flag := t.slot(pi, s); flag == slotLive {
			order = append(order, s)
		}
	}
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 {
			a, _, _ := t.slot(pi, order[j-1])
			b, _, _ := t.slot(pi, order[j])
			if a >= b {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	po := t.pageOff(pi)
	newBump := PageSize
	for _, s := range order {
		off, size, _ := t.slot(pi, s)
		dest := newBump - size
		if dest != off {
			copy(t.region[po+dest:po+dest+size], t.region[po+off:po+off+size])
			t.setSlot(pi, s, dest, size, slotLive)
		}
		newBump = dest
	}
	for s := 0; s < nSlots; s++ {
		if _, size, flag := t.slot(pi, s); flag == slotDead {
			t.setSlot(pi, s, 0, 0, slotUnused)
			reclaimed++
			bytesFreed += int64(size)
			t.deadTuples--
			t.deadBytes -= int64(size)
		}
	}
	// Zero the reclaimed gap so dead bytes are physically erased.
	clear(t.region[po+t.pteNSlots(pi)*slotSize : po+newBump])
	t.setPTE(pi, newBump, nSlots, t.pteLive(pi))
	t.dirtySinceCkpt[pi] = true
	return reclaimed, bytesFreed
}

// VacuumFull rewrites every page densely from page 0, zeroing freed
// space, rebuilding the index, and scrubbing the redo window — the
// strongest in-engine reclamation.
func (t *Table) VacuumFull() VacuumStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var vs VacuumStats
	vs.PagesVisited = t.nPages()
	type kv struct{ k, v []byte }
	var rows []kv
	for pi := 0; pi < t.nPages(); pi++ {
		for s := 0; s < t.pteNSlots(pi); s++ {
			off, size, flag := t.slot(pi, s)
			switch flag {
			case slotLive:
				k, v := t.tuple(pi, off)
				rows = append(rows, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
			case slotDead:
				vs.TuplesReclaimed++
				vs.BytesReclaimed += int64(size)
			}
		}
	}
	// Reset every page to empty (zeroed) and re-place densely.
	clear(t.region[t.pagesOff():])
	for pi := 0; pi < t.nPages(); pi++ {
		t.setPTE(pi, PageSize, 0, 0)
		t.dirtySinceCkpt[pi] = true
	}
	t.index = make(map[string]tid, len(rows))
	t.fsm = t.fsm[:0]
	clear(t.fsmSet)
	clear(t.dirty)
	t.liveTuples, t.deadTuples = 0, 0
	t.liveBytes, t.deadBytes = 0, 0
	cur := 0
	for _, r := range rows {
		s, ok := t.pageInsert(cur, r.k, r.v)
		if !ok {
			cur++
			if s, ok = t.pageInsert(cur, r.k, r.v); !ok {
				panic("mheap: tuple larger than page during VACUUM FULL")
			}
		}
		t.index[string(r.k)] = makeTID(cur, s)
	}
	for pi := 0; pi <= cur && pi < t.nPages(); pi++ {
		if t.pageFreeBytes(pi) >= 64 && !t.fsmSet[pi] {
			t.fsmSet[pi] = true
			t.fsm = append(t.fsm, pi)
		}
	}
	t.scrubRedoLocked()
	t.stats.vacuumFullRuns.Add(1)
	t.stats.tuplesReclaimed.Add(uint64(vs.TuplesReclaimed))
	if t.log != nil {
		t.log.Append(wal.RecVacuum, []byte(t.name+":full"), nil)
	}
	return vs
}

// RegionSnapshot returns a copy of the durable region — what a crash
// leaves on "disk". Recovery re-attaches it with Attach.
func (t *Table) RegionSnapshot() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]byte(nil), t.region...)
}

// AppliedLSN returns the WAL LSN of the last mutation applied to the
// region. Recovery uses it to skip WAL tail records the region already
// reflects.
func (t *Table) AppliedLSN() wal.LSN {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return wal.LSN(t.appliedLSN())
}

// CheckpointRegion takes the engine's part of a checkpoint: snapshot
// the page table into the shadow copy (the double-buffer a real mmap
// store would msync) and reset the — fully applied — redo window. No
// row is serialized anywhere. It returns the number of pages dirtied
// since the previous snapshot (the O(dirty) msync cost).
func (t *Table) CheckpointRegion() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	copy(t.region[t.sptOff():t.sptOff()+t.maxPages*pteSize], t.region[t.ptOff():t.ptOff()+t.maxPages*pteSize])
	t.scrubRedoLocked()
	t.pu64(offCheckpoints, t.u64(offCheckpoints)+1)
	n := len(t.dirtySinceCkpt)
	clear(t.dirtySinceCkpt)
	return n
}
