package mheap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/datacase/datacase/internal/wal"
)

// digest captures the logical state (live rows) of a table.
func digest(t *Table) map[string]string {
	out := map[string]string{}
	t.SeqScan(func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	})
	return out
}

func sameDigest(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func smallOpts() Options { return Options{MaxPages: 64, RedoCap: minRedoCap} }

func TestAttachRoundTripAndCursors(t *testing.T) {
	tab := New("t", wal.New(), smallOpts())
	for i := 0; i < 50; i++ {
		if err := tab.Insert([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Update([]byte("k010"), []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete([]byte("k011")); err != nil {
		t.Fatal(err)
	}
	want := digest(tab)
	re, err := Attach("t", wal.New(), tab.RegionSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !sameDigest(digest(re), want) {
		t.Fatal("attach changed the logical state")
	}
	if re.AppliedLSN() != tab.AppliedLSN() || re.AppliedLSN() == 0 {
		t.Fatalf("AppliedLSN %d vs %d", re.AppliedLSN(), tab.AppliedLSN())
	}
	// The re-attached table keeps working: FSM, updates, batch inserts.
	if err := re.InsertBatch(
		[][]byte{[]byte("b1"), []byte("b2")},
		[][]byte{[]byte("x"), []byte("y")},
	); err != nil {
		t.Fatal(err)
	}
	if v, ok := re.Get([]byte("b2")); !ok || string(v) != "y" {
		t.Fatalf("Get(b2) = %q,%v", v, ok)
	}
}

// TestRedoReplayAppliesUnappliedTail: a region whose commit marker
// covers entries the pages never saw (crash between marker advance and
// page apply) replays them on attach.
func TestRedoReplayAppliesUnappliedTail(t *testing.T) {
	tab := New("t", nil, smallOpts())
	if err := tab.Insert([]byte("base"), []byte("v0")); err != nil {
		t.Fatal(err)
	}
	region := tab.RegionSnapshot()
	// Hand-append a committed insert entry the pages never saw.
	probe, _ := Attach("probe", nil, append([]byte(nil), region...))
	need := redoEntrySize(3, 2)
	off := probe.redoOff() + probe.redoLen()
	encodeRedo(region[off:off+need], opInsert, probe.appliedSeq()+1, 77, []byte("new"), []byte("nv"))
	binary.BigEndian.PutUint64(region[offRedoLen:], uint64(probe.redoLen()+need))

	re, err := Attach("t", nil, region)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := re.Get([]byte("new")); !ok || string(v) != "nv" {
		t.Fatalf("replayed insert missing: %q,%v", v, ok)
	}
	if re.AppliedLSN() != 77 {
		t.Fatalf("AppliedLSN = %d, want 77", re.AppliedLSN())
	}
	if re.Stats().RedoReplayed == 0 {
		t.Fatal("replay counter did not move")
	}
}

// TestRedoReplayIdempotent: replay of an entry whose page effects
// already landed (crash between page apply and cursor advance) must not
// duplicate them.
func TestRedoReplayIdempotent(t *testing.T) {
	tab := New("t", nil, smallOpts())
	if err := tab.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert([]byte("b"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	want := digest(tab)
	region := tab.RegionSnapshot()
	// Rewind the applied cursor: every redo entry now looks unapplied
	// even though the pages reflect it.
	binary.BigEndian.PutUint64(region[offAppliedSeq:], 0)
	re, err := Attach("t", nil, region)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDigest(digest(re), want) {
		t.Fatalf("idempotent replay diverged: %v vs %v", digest(re), want)
	}
	if re.Len() != 2 {
		t.Fatalf("Len = %d after double-apply", re.Len())
	}
}

// TestTornRedoTailSweep is the crash sweep the ISSUE mandates: with the
// redo log truncated at every byte boundary mid-transaction, attach
// must land on a state digest-equal to exactly the pre-op or post-op
// state.
func TestTornRedoTailSweep(t *testing.T) {
	tab := New("t", nil, smallOpts())
	for i := 0; i < 8; i++ {
		if err := tab.Insert([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pre := tab.RegionSnapshot()
	preDigest := digest(tab)
	if err := tab.Update([]byte("k3"), []byte("UPDATED-PAYLOAD")); err != nil {
		t.Fatal(err)
	}
	post := tab.RegionSnapshot()
	postDigest := digest(tab)

	preLen := int(binary.BigEndian.Uint64(pre[offRedoLen:]))
	postLen := int(binary.BigEndian.Uint64(post[offRedoLen:]))
	if postLen <= preLen {
		t.Fatalf("update wrote no redo entry (%d -> %d)", preLen, postLen)
	}
	probe, _ := Attach("probe", nil, append([]byte(nil), pre...))
	redoOff := probe.redoOff()

	matchedPre, matchedPost := 0, 0
	for cut := 0; cut <= postLen-preLen; cut++ {
		region := append([]byte(nil), pre...)
		// Crash model: the commit marker advanced but only `cut` bytes
		// of the entry reached the region.
		binary.BigEndian.PutUint64(region[offRedoLen:], uint64(postLen))
		copy(region[redoOff+preLen:redoOff+preLen+cut], post[redoOff+preLen:redoOff+preLen+cut])
		re, err := Attach("t", nil, region)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := digest(re)
		switch {
		case sameDigest(got, preDigest):
			matchedPre++
		case sameDigest(got, postDigest):
			matchedPost++
		default:
			t.Fatalf("cut %d: recovered state matches neither pre nor post: %v", cut, got)
		}
	}
	if matchedPost == 0 {
		t.Fatal("full entry never recovered the post-op state")
	}
	if matchedPre == 0 {
		t.Fatal("torn entries never recovered the pre-op state")
	}
}

// TestRedoOverflowResets: a redo area too small for the workload resets
// (scrubbing the applied window) instead of overflowing.
func TestRedoOverflowResets(t *testing.T) {
	tab := New("t", nil, smallOpts())
	val := bytes.Repeat([]byte("x"), 2048)
	for i := 0; i < 32; i++ {
		if err := tab.Insert([]byte(fmt.Sprintf("k%02d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	st := tab.Stats()
	if st.RedoResets == 0 {
		t.Fatalf("no redo reset after %d large entries in a %d-byte area", 32, minRedoCap)
	}
	used, capacity := tab.redoUtilization()
	if used > capacity {
		t.Fatalf("redo overflow: %d > %d", used, capacity)
	}
	if tab.Len() != 32 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

// TestVacuumScrubsPagesAndRedo: after DELETE the payload is resident in
// both the page and the redo area; lazy VACUUM must remove it from
// both.
func TestVacuumScrubsPagesAndRedo(t *testing.T) {
	tab := New("t", wal.New(), smallOpts())
	secret := []byte("SECRET-RESIDENT-BYTES")
	if err := tab.Insert([]byte("victim"), secret); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert([]byte("other"), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete([]byte("victim")); err != nil {
		t.Fatal(err)
	}
	if !tab.ForensicScan(secret) {
		t.Fatal("deleted payload should be physically resident pre-vacuum")
	}
	if keys, _ := tab.ForensicDeadTuples(); len(keys) != 1 || string(keys[0]) != "victim" {
		t.Fatalf("dead tuples = %v", keys)
	}
	if r := tab.DeadRatio(); r == 0 {
		t.Fatal("DeadRatio 0 with a dead tuple")
	}
	vs := tab.Vacuum()
	if vs.TuplesReclaimed != 1 || vs.BytesReclaimed == 0 {
		t.Fatalf("vacuum stats %+v", vs)
	}
	if tab.ForensicScan(secret) {
		t.Fatal("payload survives vacuum (page or redo remnant)")
	}
	if v, ok := tab.Get([]byte("other")); !ok || string(v) != "keep" {
		t.Fatalf("survivor row damaged: %q,%v", v, ok)
	}
}

// TestVacuumFullAndSanitize: VACUUM FULL densifies and scrubs; the
// sanitize pair verifies pattern coverage of all non-live bytes.
func TestVacuumFullAndSanitize(t *testing.T) {
	tab := New("t", nil, smallOpts())
	for i := 0; i < 30; i++ {
		if err := tab.Insert([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte('a' + i%26)}, 300)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ {
		if err := tab.Delete([]byte(fmt.Sprintf("k%02d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	vs := tab.VacuumFull()
	if vs.TuplesReclaimed != 15 {
		t.Fatalf("VacuumFull reclaimed %d", vs.TuplesReclaimed)
	}
	if tab.Len() != 15 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if n := tab.SanitizePass(0xAA); n == 0 {
		t.Fatal("SanitizePass wrote nothing")
	}
	if !tab.VerifySanitized(0xAA) {
		t.Fatal("VerifySanitized(0xAA) after a 0xAA pass")
	}
	if tab.VerifySanitized(0x00) {
		t.Fatal("VerifySanitized(0x00) after a 0xAA pass")
	}
	// Live rows unharmed by sanitization.
	if v, ok := tab.Get([]byte("k01")); !ok || len(v) != 300 {
		t.Fatalf("live row damaged: %d bytes, ok=%v", len(v), ok)
	}
	// Fresh mutations fail verification again (their redo entries are
	// exactly the remnants VerifySanitized exists to catch).
	if err := tab.Insert([]byte("fresh"), []byte("row")); err != nil {
		t.Fatal(err)
	}
	if tab.VerifySanitized(0xAA) {
		t.Fatal("VerifySanitized ignored fresh redo entries")
	}
}

// TestCheckpointRegionSnapshotsAndShadowRepair: CheckpointRegion counts
// dirty pages and snapshots the page table; a corrupted live page-table
// entry is repaired from that shadow at attach.
func TestCheckpointRegionSnapshotsAndShadowRepair(t *testing.T) {
	tab := New("t", nil, smallOpts())
	for i := 0; i < 40; i++ {
		if err := tab.Insert([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("v"), 200)); err != nil {
			t.Fatal(err)
		}
	}
	if n := tab.CheckpointRegion(); n == 0 {
		t.Fatal("no dirty pages before first checkpoint")
	}
	if n := tab.CheckpointRegion(); n != 0 {
		t.Fatalf("%d dirty pages right after checkpoint", n)
	}
	want := digest(tab)
	region := tab.RegionSnapshot()
	// Tear the live page-table entry for page 0: bump beyond PageSize.
	binary.BigEndian.PutUint32(region[headerSize:], PageSize+1)
	re, err := Attach("t", nil, region)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDigest(digest(re), want) {
		t.Fatal("shadow page-table repair lost rows")
	}
}

func TestAttachRejectsCorruptRegions(t *testing.T) {
	tab := New("t", nil, smallOpts())
	if err := tab.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	good := tab.RegionSnapshot()

	cases := map[string]func([]byte) []byte{
		"too-small": func(r []byte) []byte { return r[:headerSize-1] },
		"bad-magic": func(r []byte) []byte {
			binary.BigEndian.PutUint32(r[offMagic:], 0xDEAD)
			return r
		},
		"bad-version": func(r []byte) []byte {
			binary.BigEndian.PutUint32(r[offVersion:], 99)
			return r
		},
		"bad-page-size": func(r []byte) []byte {
			binary.BigEndian.PutUint32(r[offPageSize:], 4096)
			return r
		},
		"bad-geometry": func(r []byte) []byte {
			binary.BigEndian.PutUint32(r[offRedoCap:], 1)
			return r
		},
		"bad-page-count": func(r []byte) []byte {
			binary.BigEndian.PutUint32(r[offNPages:], 1<<30)
			return r
		},
		"truncated": func(r []byte) []byte { return r[:len(r)-1] },
	}
	for name, corrupt := range cases {
		if _, err := Attach("t", nil, corrupt(append([]byte(nil), good...))); err == nil {
			t.Fatalf("%s: Attach accepted a corrupt region", name)
		}
	}
	// A clamped (over-long) redo marker is repaired, not rejected.
	r := append([]byte(nil), good...)
	binary.BigEndian.PutUint64(r[offRedoLen:], 1<<40)
	if _, err := Attach("t", nil, r); err != nil {
		t.Fatalf("redoLen clamp: %v", err)
	}
}

func TestCapacityAndBatchErrors(t *testing.T) {
	tab := New("t", nil, Options{MaxPages: 1, RedoCap: minRedoCap})
	huge := bytes.Repeat([]byte("x"), PageSize)
	if err := tab.Insert([]byte("k"), huge); err == nil {
		t.Fatal("oversized tuple accepted")
	}
	if err := tab.Insert([]byte("a"), bytes.Repeat([]byte("x"), 4000)); err != nil {
		t.Fatal(err)
	}
	// Second 4000-byte tuple does not fit page 1 and no page 2 exists.
	if err := tab.Insert([]byte("b"), bytes.Repeat([]byte("y"), 4000)); err == nil {
		t.Fatal("region-full insert accepted")
	}
	if err := tab.InsertBatch([][]byte{[]byte("x")}, nil); err == nil {
		t.Fatal("length-mismatched batch accepted")
	}
	if err := tab.InsertBatch(nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := tab.InsertBatch(
		[][]byte{[]byte("d"), []byte("d")},
		[][]byte{[]byte("1"), []byte("2")},
	); err == nil {
		t.Fatal("intra-batch duplicate accepted")
	}
	if err := tab.InsertBatch(
		[][]byte{[]byte("a")},
		[][]byte{[]byte("1")},
	); err == nil {
		t.Fatal("batch duplicate of live key accepted")
	}
	// BulkLoad refuses non-empty tables and duplicate keys.
	if _, err := tab.BulkLoad(func() ([]byte, []byte, bool) { return nil, nil, false }); err == nil {
		t.Fatal("BulkLoad into non-empty table accepted")
	}
	fresh := New("t2", nil, smallOpts())
	rows := [][2]string{{"a", "1"}, {"a", "2"}}
	i := 0
	if _, err := fresh.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(rows) {
			return nil, nil, false
		}
		r := rows[i]
		i++
		return []byte(r[0]), []byte(r[1]), true
	}); err == nil {
		t.Fatal("BulkLoad duplicate accepted")
	}
}

func FuzzMheapRedo(f *testing.F) {
	// Seed with valid entries of each op plus structured garbage.
	mk := func(op int, seq, lsn uint64, key, val []byte) []byte {
		b := make([]byte, redoEntrySize(len(key), len(val)))
		encodeRedo(b, op, seq, lsn, key, val)
		return b
	}
	f.Add(mk(opInsert, 1, 1, []byte("k"), []byte("v")))
	f.Add(mk(opUpdate, 7, 42, []byte("key"), bytes.Repeat([]byte("x"), 100)))
	f.Add(mk(opDelete, 9, 50, []byte("gone"), nil))
	f.Add([]byte{0x52, 0x44, 0x01})                   // truncated header
	f.Add(bytes.Repeat([]byte{0xFF}, redoHeaderSize)) // bad magic
	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := decodeRedo(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded size %d out of range (len %d)", n, len(data))
		}
		if e.op < opInsert || e.op > opDelete {
			t.Fatalf("decoded invalid op %d", e.op)
		}
		// Round-trip: re-encoding the decoded entry reproduces the
		// accepted bytes exactly, so the codec has one canonical form.
		back := make([]byte, redoEntrySize(len(e.key), len(e.val)))
		encodeRedo(back, e.op, e.seq, e.lsn, e.key, e.val)
		if !bytes.Equal(back, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", back, data[:n])
		}
	})
}
