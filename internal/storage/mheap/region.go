// Package mheap is a durable heap engine in the idiom of
// persistent-memory stores: the whole table lives in one flat byte
// region laid out as if it were an mmap'd file. Pages ARE the durable
// state — mutations are redo-logged in-place transactions against the
// region (write redo entry, advance the commit marker, apply to the
// page), never serialized through WAL segment images. A checkpoint is a
// page-table snapshot plus a redo-log reset (O(dirty pages), no
// encoding), and recovery re-attaches the region, replays the embedded
// redo tail, and rebuilds the in-memory index from the page headers.
//
// Region layout (all integers big-endian):
//
//	[ header 64 B ]
//	[ page table      maxPages × 8 B ]  bump u32 | nSlots u16 | live u16
//	[ shadow page table, same size   ]  checkpoint-time snapshot
//	[ redo area       redoCap B      ]  embedded redo log
//	[ pages           nPages × 8 KiB ]  slotted pages
//
// Each page holds a slot directory growing from the front (8 B per
// slot: off u32 | flag:2+size:30 u32) and tuple data bump-allocated
// downward from the page end, `[keyLen u16][valLen u32][key][value]`
// per tuple. A logical DELETE only flips the slot flag — the tuple
// bytes stay resident in the region until VACUUM compacts the page and
// zeroes the reclaimed range, which is exactly the physical-retention
// hazard the erasure groundings must be able to observe (ForensicScan)
// and remove (SanitizePass).
package mheap

import (
	"encoding/binary"
	"fmt"
)

const (
	regionMagic   = 0x4D485031 // "MHP1"
	regionVersion = 1

	// PageSize matches the heap backend's 8 KiB pages.
	PageSize = 8192

	headerSize = 64
	pteSize    = 8
	slotSize   = 8

	// tupleOverhead is the inline tuple header: keyLen(2) + valLen(4).
	tupleOverhead = 2 + 4

	// maxTupleSize is the largest tuple a page can hold (one slot plus
	// the tuple itself must fit in a fresh page).
	maxTupleSize = PageSize - slotSize

	defaultMaxPages = 1 << 13 // 64 MiB of pages
	defaultRedoCap  = 1 << 20 // 1 MiB embedded redo area
	// minRedoCap guarantees any single tuple's redo entry fits the area
	// even right after a reset.
	minRedoCap = 2 * PageSize
)

// Header field offsets.
const (
	offMagic       = 0
	offVersion     = 4
	offPageSize    = 8
	offMaxPages    = 12
	offNPages      = 16
	offRedoCap     = 20
	offRedoLen     = 24 // commit marker: bytes [0, redoLen) are committed entries
	offAppliedSeq  = 32 // highest redo sequence applied to pages
	offAppliedLSN  = 40 // WAL LSN of the last page-applied mutation
	offCheckpoints = 48 // page-table snapshots taken
)

// Slot flags (top 2 bits of the slot's size word).
const (
	slotUnused = 0
	slotLive   = 1
	slotDead   = 2
)

// tid identifies a tuple as page<<16 | slot, mirroring the heap
// backend's TID packing.
type tid uint64

func makeTID(page, slot int) tid { return tid(uint64(page)<<16 | uint64(slot&0xFFFF)) }
func (t tid) page() int          { return int(t >> 16) }
func (t tid) slot() int          { return int(t & 0xFFFF) }

// --- raw region accessors (caller holds the table lock) ---

func (t *Table) u32(off int) uint32     { return binary.BigEndian.Uint32(t.region[off:]) }
func (t *Table) u64(off int) uint64     { return binary.BigEndian.Uint64(t.region[off:]) }
func (t *Table) pu32(off int, v uint32) { binary.BigEndian.PutUint32(t.region[off:], v) }
func (t *Table) pu64(off int, v uint64) { binary.BigEndian.PutUint64(t.region[off:], v) }

func (t *Table) nPages() int        { return int(t.u32(offNPages)) }
func (t *Table) redoLen() int       { return int(t.u64(offRedoLen)) }
func (t *Table) appliedSeq() uint64 { return t.u64(offAppliedSeq) }
func (t *Table) appliedLSN() uint64 { return t.u64(offAppliedLSN) }

func (t *Table) setNPages(n int)        { t.pu32(offNPages, uint32(n)) }
func (t *Table) setRedoLen(n int)       { t.pu64(offRedoLen, uint64(n)) }
func (t *Table) setAppliedSeq(s uint64) { t.pu64(offAppliedSeq, s) }
func (t *Table) setAppliedLSN(l uint64) { t.pu64(offAppliedLSN, l) }

// Derived layout offsets.
func (t *Table) ptOff() int         { return headerSize }
func (t *Table) sptOff() int        { return headerSize + t.maxPages*pteSize }
func (t *Table) redoOff() int       { return headerSize + 2*t.maxPages*pteSize }
func (t *Table) pagesOff() int      { return t.redoOff() + t.redoCap }
func (t *Table) pageOff(pi int) int { return t.pagesOff() + pi*PageSize }

// --- page-table entries ---

func (t *Table) pteOff(pi int) int { return t.ptOff() + pi*pteSize }

func (t *Table) pteBump(pi int) int   { return int(t.u32(t.pteOff(pi))) }
func (t *Table) pteNSlots(pi int) int { return int(binary.BigEndian.Uint16(t.region[t.pteOff(pi)+4:])) }
func (t *Table) pteLive(pi int) int   { return int(binary.BigEndian.Uint16(t.region[t.pteOff(pi)+6:])) }

func (t *Table) setPTE(pi, bump, nSlots, live int) {
	off := t.pteOff(pi)
	binary.BigEndian.PutUint32(t.region[off:], uint32(bump))
	binary.BigEndian.PutUint16(t.region[off+4:], uint16(nSlots))
	binary.BigEndian.PutUint16(t.region[off+6:], uint16(live))
}

// pteValid is the attach-time sanity check on a page-table entry; an
// entry that fails it is repaired from the shadow snapshot.
func (t *Table) pteValid(pi int) bool {
	bump, nSlots := t.pteBump(pi), t.pteNSlots(pi)
	return bump <= PageSize && nSlots*slotSize <= bump
}

// --- slots (within page pi) ---

func (t *Table) slotOff(pi, s int) int { return t.pageOff(pi) + s*slotSize }

func (t *Table) slot(pi, s int) (off, size, flag int) {
	so := t.slotOff(pi, s)
	off = int(t.u32(so))
	w := t.u32(so + 4)
	return off, int(w & 0x3FFFFFFF), int(w >> 30)
}

func (t *Table) setSlot(pi, s, off, size, flag int) {
	so := t.slotOff(pi, s)
	t.pu32(so, uint32(off))
	t.pu32(so+4, uint32(size)|uint32(flag)<<30)
}

// tuple reads the tuple behind a slot; the returned slices alias the
// region and must not be retained past the lock.
func (t *Table) tuple(pi, off int) (key, value []byte) {
	base := t.pageOff(pi) + off
	kl := int(binary.BigEndian.Uint16(t.region[base:]))
	vl := int(binary.BigEndian.Uint32(t.region[base+2:]))
	key = t.region[base+tupleOverhead : base+tupleOverhead+kl]
	value = t.region[base+tupleOverhead+kl : base+tupleOverhead+kl+vl]
	return key, value
}

func (t *Table) writeTuple(pi, off int, key, value []byte) {
	base := t.pageOff(pi) + off
	if len(key) > 0xFFFF {
		panic(fmt.Sprintf("mheap: key too large (%d bytes)", len(key)))
	}
	binary.BigEndian.PutUint16(t.region[base:], uint16(len(key)))
	binary.BigEndian.PutUint32(t.region[base+2:], uint32(len(value)))
	copy(t.region[base+tupleOverhead:], key)
	copy(t.region[base+tupleOverhead+len(key):], value)
}

// pageInsert places a tuple in page pi, reusing an unused slot when one
// exists; ok is false when the page lacks space.
func (t *Table) pageInsert(pi int, key, value []byte) (int, bool) {
	need := tupleOverhead + len(key) + len(value)
	bump, nSlots, live := t.pteBump(pi), t.pteNSlots(pi), t.pteLive(pi)
	s := -1
	for i := 0; i < nSlots; i++ {
		if _, _, flag := t.slot(pi, i); flag == slotUnused {
			s = i
			break
		}
	}
	slotEnd := nSlots * slotSize
	if s < 0 {
		slotEnd += slotSize
	}
	if bump-need < slotEnd {
		return 0, false
	}
	off := bump - need
	t.writeTuple(pi, off, key, value)
	if s < 0 {
		s = nSlots
		nSlots++
	}
	t.setSlot(pi, s, off, need, slotLive)
	t.setPTE(pi, off, nSlots, live+1)
	t.liveTuples++
	t.liveBytes += int64(need)
	t.dirtySinceCkpt[pi] = true
	return s, true
}

// kill marks a slot dead; the tuple bytes stay in the page (awaiting
// vacuum), which is the physical-retention hazard ForensicScan reports.
func (t *Table) kill(id tid) {
	pi, s := id.page(), id.slot()
	off, size, flag := t.slot(pi, s)
	if flag != slotLive {
		return
	}
	t.setSlot(pi, s, off, size, slotDead)
	t.setPTE(pi, t.pteBump(pi), t.pteNSlots(pi), t.pteLive(pi)-1)
	t.liveTuples--
	t.deadTuples++
	t.liveBytes -= int64(size)
	t.deadBytes += int64(size)
	t.dirty[pi] = true
	t.dirtySinceCkpt[pi] = true
}

// addPage extends the region by one zeroed page. The caller must have
// verified capacity (ensureSpace); running out here is a logic error.
func (t *Table) addPage() int {
	n := t.nPages()
	if n >= t.maxPages {
		panic("mheap: page table full (ensureSpace not called)")
	}
	t.region = append(t.region, make([]byte, PageSize)...)
	t.setNPages(n + 1)
	t.setPTE(n, PageSize, 0, 0)
	t.stats.pagesAllocated.Add(1)
	return n
}

// place writes the tuple into a page with space — FSM pages first, then
// the tail page, then a fresh page. Caller holds mu and has run
// ensureSpace.
func (t *Table) place(key, value []byte) tid {
	for len(t.fsm) > 0 {
		pi := t.fsm[len(t.fsm)-1]
		if s, ok := t.pageInsert(pi, key, value); ok {
			return makeTID(pi, s)
		}
		t.fsm = t.fsm[:len(t.fsm)-1]
		delete(t.fsmSet, pi)
	}
	if n := t.nPages(); n > 0 {
		if s, ok := t.pageInsert(n-1, key, value); ok {
			return makeTID(n-1, s)
		}
	}
	pi := t.addPage()
	s, ok := t.pageInsert(pi, key, value)
	if !ok {
		panic(fmt.Sprintf("mheap: tuple larger than page (%d+%d bytes)", len(key), len(value)))
	}
	return makeTID(pi, s)
}

// ensureSpace verifies the region can absorb n more tuples of the given
// total size in the worst case (each on a fresh page) BEFORE anything is
// WAL-logged, so a mutation that passed the check can never half-fail.
func (t *Table) ensureSpace(n int, maxNeed int) error {
	if maxNeed > maxTupleSize {
		return fmt.Errorf("mheap: tuple of %d bytes exceeds page capacity (%d)", maxNeed, maxTupleSize)
	}
	if t.nPages()+n > t.maxPages {
		return fmt.Errorf("mheap: region full (%d/%d pages)", t.nPages(), t.maxPages)
	}
	return nil
}

// pageFreeBytes returns the space available for one more tuple in page
// pi, accounting for a fresh slot.
func (t *Table) pageFreeBytes(pi int) int {
	free := t.pteBump(pi) - (t.pteNSlots(pi)+1)*slotSize
	if free < 0 {
		return 0
	}
	return free
}
