package heap

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of a heap page's data area in bytes, matching
// PostgreSQL's default block size.
const PageSize = 8192

// tupleOverhead approximates the per-tuple header cost (PostgreSQL's
// HeapTupleHeaderData is 23 bytes; we store keyLen(2)+valLen(4) inline
// and count the rest as header).
const tupleOverhead = 2 + 4

// slotOverhead is the per-slot line-pointer cost counted against the
// page's free space (PostgreSQL's ItemIdData is 4 bytes).
const slotOverhead = 4

// slotFlags describe the state of a line pointer.
type slotFlag uint8

const (
	// slotLive points at a visible tuple.
	slotLive slotFlag = iota
	// slotDead points at a deleted/superseded tuple whose bytes are
	// still in the page (awaiting vacuum).
	slotDead
	// slotUnused is a reclaimed line pointer; its data range is free.
	slotUnused
)

// slot is a line pointer into the page's data area.
type slot struct {
	off  int // offset of the tuple in buf
	size int // encoded tuple size (overhead + key + value)
	flag slotFlag
}

// page is one slotted heap page: a raw byte buffer plus a line-pointer
// directory. Tuple data is bump-allocated from the front; compaction
// (vacuum) rewrites the data area in place.
type page struct {
	buf   []byte
	slots []slot
	// used is the bump pointer: bytes [0, used) hold tuple data
	// (possibly including dead tuples' bytes).
	used int
	live int
	dead int
}

func newPage() *page {
	return &page{buf: make([]byte, PageSize)}
}

// freeBytes returns the space available for one more tuple, accounting
// for its line pointer.
func (p *page) freeBytes() int {
	free := PageSize - p.used - (len(p.slots)+1)*slotOverhead
	if free < 0 {
		return 0
	}
	return free
}

// insert writes a tuple and returns its slot number; ok is false when the
// page lacks space. It reuses an unused slot's line pointer if one fits.
func (p *page) insert(key, value []byte) (int, bool) {
	need := tupleOverhead + len(key) + len(value)
	if need > p.freeBytes() {
		return 0, false
	}
	off := p.used
	encodeTuple(p.buf[off:], key, value)
	p.used += need
	// Reuse an unused line pointer when available.
	for i := range p.slots {
		if p.slots[i].flag == slotUnused {
			p.slots[i] = slot{off: off, size: need, flag: slotLive}
			p.live++
			return i, true
		}
	}
	p.slots = append(p.slots, slot{off: off, size: need, flag: slotLive})
	p.live++
	return len(p.slots) - 1, true
}

// read returns the tuple at slot i; ok is false for dead/unused slots.
func (p *page) read(i int) (key, value []byte, ok bool) {
	if i < 0 || i >= len(p.slots) || p.slots[i].flag != slotLive {
		return nil, nil, false
	}
	s := p.slots[i]
	k, v := decodeTuple(p.buf[s.off : s.off+s.size])
	return k, v, true
}

// readAny returns the tuple at slot i regardless of liveness (used by
// forensic scans); ok is false only for unused slots.
func (p *page) readAny(i int) (key, value []byte, live, ok bool) {
	if i < 0 || i >= len(p.slots) || p.slots[i].flag == slotUnused {
		return nil, nil, false, false
	}
	s := p.slots[i]
	k, v := decodeTuple(p.buf[s.off : s.off+s.size])
	return k, v, s.flag == slotLive, true
}

// kill marks slot i dead; the tuple bytes stay in the page.
func (p *page) kill(i int) bool {
	if i < 0 || i >= len(p.slots) || p.slots[i].flag != slotLive {
		return false
	}
	p.slots[i].flag = slotDead
	p.live--
	p.dead++
	return true
}

// compact removes dead tuples' bytes by sliding live tuples toward the
// front of the data area (in place, like PageRepairFragmentation) and
// zeroing the reclaimed tail. Slot numbers are preserved (dead slots
// become unused; live slots keep their index but point at new offsets)
// so index TIDs for live tuples stay valid. It returns the number of
// dead tuples reclaimed.
func (p *page) compact() int {
	if p.dead == 0 {
		return 0
	}
	// Live slots sorted by offset so the in-place slide never overlaps
	// forward.
	order := make([]int, 0, len(p.slots))
	for i := range p.slots {
		if p.slots[i].flag == slotLive {
			order = append(order, i)
		}
	}
	sortSlotsByOffset(p.slots, order)
	used := 0
	for _, i := range order {
		s := &p.slots[i]
		if s.off != used {
			copy(p.buf[used:used+s.size], p.buf[s.off:s.off+s.size])
			s.off = used
		}
		used += s.size
	}
	reclaimed := 0
	for i := range p.slots {
		if p.slots[i].flag == slotDead {
			p.slots[i] = slot{flag: slotUnused}
			reclaimed++
		}
	}
	// Zero the tail so reclaimed bytes are physically erased.
	for b := used; b < p.used; b++ {
		p.buf[b] = 0
	}
	p.used = used
	p.dead = 0
	return reclaimed
}

// sortSlotsByOffset insertion-sorts the index list by slot offset (live
// slots are nearly sorted already, so this is effectively linear).
func sortSlotsByOffset(slots []slot, order []int) {
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && slots[order[j-1]].off > slots[order[j]].off {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
}

// overwriteFree overwrites every byte outside live tuples' data with the
// given pattern (one sanitization pass). It returns the number of bytes
// overwritten.
func (p *page) overwriteFree(pattern byte) int {
	liveBytes := make([]bool, PageSize)
	for _, s := range p.slots {
		if s.flag == slotLive {
			for b := s.off; b < s.off+s.size && b < PageSize; b++ {
				liveBytes[b] = true
			}
		}
	}
	n := 0
	for b := 0; b < PageSize; b++ {
		if !liveBytes[b] {
			p.buf[b] = pattern
			n++
		}
	}
	return n
}

// liveDataBytes returns the bytes occupied by live tuples.
func (p *page) liveDataBytes() int {
	n := 0
	for _, s := range p.slots {
		if s.flag == slotLive {
			n += s.size
		}
	}
	return n
}

// deadDataBytes returns the bytes occupied by dead tuples.
func (p *page) deadDataBytes() int {
	n := 0
	for _, s := range p.slots {
		if s.flag == slotDead {
			n += s.size
		}
	}
	return n
}

// encodeTuple lays out [keyLen u16][valLen u32][key][value] at buf[0:].
func encodeTuple(buf []byte, key, value []byte) {
	if len(key) > 0xFFFF {
		panic(fmt.Sprintf("heap: key too large (%d bytes)", len(key)))
	}
	binary.BigEndian.PutUint16(buf[0:2], uint16(len(key)))
	binary.BigEndian.PutUint32(buf[2:6], uint32(len(value)))
	copy(buf[6:], key)
	copy(buf[6+len(key):], value)
}

// decodeTuple parses a tuple encoded by encodeTuple. The returned slices
// alias the page buffer; callers must copy before retaining.
func decodeTuple(buf []byte) (key, value []byte) {
	kl := int(binary.BigEndian.Uint16(buf[0:2]))
	vl := int(binary.BigEndian.Uint32(buf[2:6]))
	key = buf[6 : 6+kl]
	value = buf[6+kl : 6+kl+vl]
	return key, value
}
