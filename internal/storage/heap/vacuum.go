package heap

import (
	"github.com/datacase/datacase/internal/btree"
	"github.com/datacase/datacase/internal/wal"
)

// VacuumStats reports what a vacuum pass accomplished.
type VacuumStats struct {
	// TuplesReclaimed is the number of dead tuples whose space was freed.
	TuplesReclaimed int
	// PagesVisited is how many pages the pass touched.
	PagesVisited int
	// PagesFreed is how many pages VACUUM FULL returned to the "OS"
	// (always 0 for lazy vacuum, which never shrinks the relation).
	PagesFreed int
	// BytesReclaimed is the tuple data freed.
	BytesReclaimed int64
}

// Vacuum is the lazy VACUUM: guided by the visibility map, it visits
// only pages known to hold dead tuples, removes their bytes (compacting
// each page in place), and records pages with reusable space in the
// free-space map. The relation does not shrink; reads get faster because
// scans no longer step over dead tuples, and inserts reuse the freed
// space instead of extending the table.
func (t *Table) Vacuum() VacuumStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var vs VacuumStats
	for pi := range t.dirty {
		p := t.pages[pi]
		vs.PagesVisited++
		deadBytes := p.deadDataBytes()
		n := p.compact()
		if n > 0 {
			vs.TuplesReclaimed += n
			vs.BytesReclaimed += int64(deadBytes)
		}
		// Track reusable space like the FSM: any page that can hold at
		// least a small tuple is an insertion candidate.
		if p.freeBytes() >= 64 && !t.fsmSet[pi] {
			t.fsmSet[pi] = true
			t.fsm = append(t.fsm, pi)
		}
	}
	clear(t.dirty)
	t.stats.vacuumRuns.Add(1)
	t.stats.tuplesReclaimed.Add(uint64(vs.TuplesReclaimed))
	if t.log != nil {
		t.log.Append(wal.RecVacuum, []byte(t.name), nil)
	}
	return vs
}

// VacuumFull rewrites the table into fresh, densely packed pages and
// rebuilds the primary index, like PostgreSQL's VACUUM FULL. It holds
// the exclusive lock for the whole rewrite — the expense the paper's
// Figure 4(a) attributes to the strongest in-engine erasure grounding.
func (t *Table) VacuumFull() VacuumStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var vs VacuumStats
	oldPages := t.pages
	vs.PagesVisited = len(oldPages)

	newPages := []*page{}
	newIndex := btree.New()
	cur := -1
	for _, p := range oldPages {
		for i := range p.slots {
			k, v, live, ok := p.readAny(i)
			if !ok {
				continue
			}
			if !live {
				vs.TuplesReclaimed++
				vs.BytesReclaimed += int64(p.slots[i].size)
				continue
			}
			// Append to the current tail page, extending as needed.
			if cur < 0 {
				newPages = append(newPages, newPage())
				cur = 0
			}
			s, ok := newPages[cur].insert(k, v)
			if !ok {
				newPages = append(newPages, newPage())
				cur = len(newPages) - 1
				s, ok = newPages[cur].insert(k, v)
				if !ok {
					panic("heap: tuple larger than page during VACUUM FULL")
				}
			}
			newIndex.Put(k, uint64(MakeTID(cur, s)))
		}
	}
	vs.PagesFreed = len(oldPages) - len(newPages)
	t.pages = newPages
	t.index = newIndex
	t.fsm = t.fsm[:0]
	clear(t.fsmSet)
	clear(t.dirty)
	t.lastPage = len(newPages) - 1
	t.stats.vacuumFullRuns.Add(1)
	t.stats.tuplesReclaimed.Add(uint64(vs.TuplesReclaimed))
	if t.log != nil {
		t.log.Append(wal.RecVacuum, []byte(t.name+":full"), nil)
	}
	return vs
}
