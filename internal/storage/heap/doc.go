// Package heap implements a PostgreSQL-like heap storage engine over
// slotted pages, with the exact mechanics the paper's erasure experiments
// depend on:
//
//   - DELETE marks a tuple dead but leaves its bytes in the page (like
//     setting xmax): the data is logically gone but physically retained.
//   - UPDATE writes a new tuple version and leaves the old one dead.
//   - VACUUM (lazy) compacts each page in place: dead tuples' bytes are
//     removed, freed space becomes reusable through the free-space map,
//     but the table keeps its pages.
//   - VACUUM FULL rewrites the whole table into fresh minimal pages and
//     rebuilds the primary index — expensive, but the table shrinks.
//   - Sequential scans walk every slot of every page, so dead tuples
//     slow reads down until a vacuum reclaims them. This asymmetry is
//     what makes DELETE+VACUUM beat plain DELETE on read-heavy GDPR
//     workloads (Figure 4(a) of the paper).
//
// Raw page bytes are inspectable (ForensicScan) so erasure verification
// can prove whether deleted data is physically gone, and overwritable
// (SanitizeFreeSpace) so the permanent-delete grounding can apply
// multi-pass sanitization.
package heap
