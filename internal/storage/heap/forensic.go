package heap

import "bytes"

// This file provides the physical-layer inspection and sanitization
// hooks erasure groundings need. A logical DELETE leaves tuple bytes in
// the page — exactly the "illegally, physically retained" hazard the
// paper cites from the LSM/Lethe line of work — and only VACUUM (zeroing
// compaction) or explicit sanitization removes them.

// ForensicScan reports whether the byte pattern occurs anywhere in the
// raw page images, including dead tuples and freed space. Erasure
// verification uses it to prove (or disprove) that erased data is
// physically gone.
func (t *Table) ForensicScan(pattern []byte) bool {
	if len(pattern) == 0 {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.pages {
		if bytes.Contains(p.buf, pattern) {
			return true
		}
	}
	return false
}

// ForensicDeadTuples returns copies of every dead-but-present tuple
// (key, value). It is what a disk forensics pass would recover after a
// DELETE without VACUUM.
func (t *Table) ForensicDeadTuples() (keys, values [][]byte) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.pages {
		for i := range p.slots {
			k, v, live, ok := p.readAny(i)
			if ok && !live {
				keys = append(keys, append([]byte(nil), k...))
				values = append(values, append([]byte(nil), v...))
			}
		}
	}
	return keys, values
}

// SanitizePass overwrites all non-live bytes of every page with the
// given pattern and returns the number of bytes overwritten. Permanent
// deletion runs several passes with different patterns (see package
// cryptox for the policy) — the "advanced physical drive sanitation"
// step of §3.1.
func (t *Table) SanitizePass(pattern byte) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, p := range t.pages {
		n += int64(p.overwriteFree(pattern))
	}
	return n
}

// VerifySanitized reports whether every non-live byte of every page
// equals the given pattern (the verification step of a sanitization
// procedure).
func (t *Table) VerifySanitized(pattern byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.pages {
		liveBytes := make([]bool, PageSize)
		for _, s := range p.slots {
			if s.flag == slotLive {
				for b := s.off; b < s.off+s.size && b < PageSize; b++ {
					liveBytes[b] = true
				}
			}
		}
		for b := 0; b < PageSize; b++ {
			if !liveBytes[b] && p.buf[b] != pattern {
				return false
			}
		}
	}
	return true
}
