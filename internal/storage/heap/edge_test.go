package heap

import (
	"fmt"
	"testing"
)

func TestOversizedTuplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tuple larger than a page")
		}
	}()
	tb := NewTable("t", nil)
	// No TOAST here: a tuple that cannot fit one page is a programming
	// error and must fail loudly.
	_, _ = tb.Insert([]byte("k"), make([]byte, PageSize))
}

func TestEmptyValueTuple(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Insert([]byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Get([]byte("k"))
	if !ok || len(v) != 0 {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestVacuumOnEmptyTable(t *testing.T) {
	tb := NewTable("t", nil)
	if vs := tb.Vacuum(); vs.TuplesReclaimed != 0 {
		t.Fatalf("vacuum on empty table reclaimed %d", vs.TuplesReclaimed)
	}
	if vs := tb.VacuumFull(); vs.PagesFreed != 0 {
		t.Fatalf("vacuum full on empty table freed %d pages", vs.PagesFreed)
	}
}

func TestVacuumFullAfterTotalDeletion(t *testing.T) {
	tb := NewTable("t", nil)
	for i := 0; i < 500; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if err := tb.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	vs := tb.VacuumFull()
	if vs.TuplesReclaimed != 500 {
		t.Fatalf("reclaimed %d", vs.TuplesReclaimed)
	}
	sp := tb.Space()
	if sp.Pages != 0 || sp.LiveTuples != 0 {
		t.Fatalf("space after full rewrite of empty table: %+v", sp)
	}
	// Table usable again after shrinking to zero pages.
	if _, err := tb.Insert(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.Get(k(1)); !ok || string(got) != string(v(1)) {
		t.Fatalf("insert after empty-rewrite: %q %v", got, ok)
	}
}

func TestSlotReuseAfterVacuum(t *testing.T) {
	tb := NewTable("t", nil)
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Delete(k(50)); err != nil {
		t.Fatal(err)
	}
	tb.Vacuum()
	// The reclaimed line pointer should be reused instead of growing
	// the slot directory.
	slotsBefore := countSlots(tb)
	if _, err := tb.Insert([]byte("reuse-me"), []byte("small")); err != nil {
		t.Fatal(err)
	}
	if countSlots(tb) != slotsBefore {
		t.Fatalf("slot directory grew despite a free line pointer: %d -> %d",
			slotsBefore, countSlots(tb))
	}
}

func countSlots(t *Table) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, p := range t.pages {
		n += len(p.slots)
	}
	return n
}

func TestForensicScanEmptyPattern(t *testing.T) {
	tb := NewTable("t", nil)
	if tb.ForensicScan(nil) {
		t.Fatal("empty pattern matched")
	}
}

func TestCountersSnapshot(t *testing.T) {
	tb := NewTable("t", nil)
	for i := 0; i < 10; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	tb.Get(k(1))
	tb.SeqScan(func(_, _ []byte) bool { return true })
	st := tb.Stats()
	if st.TuplesInserted != 10 || st.IndexLookups == 0 || st.SeqScans != 1 {
		t.Fatalf("counters = %+v", st)
	}
}

func ExampleTable() {
	tb := NewTable("people", nil)
	if _, err := tb.Insert([]byte("alice"), []byte("data")); err != nil {
		panic(err)
	}
	if err := tb.Delete([]byte("alice")); err != nil {
		panic(err)
	}
	fmt.Println("dead before vacuum:", tb.Space().DeadTuples)
	tb.Vacuum()
	fmt.Println("dead after vacuum:", tb.Space().DeadTuples)
	// Output:
	// dead before vacuum: 1
	// dead after vacuum: 0
}
