package heap

import "fmt"

// TID is a tuple identifier: (page number, slot number), packed like
// PostgreSQL's ctid. Page numbers are limited to 2^48-1 and slots to
// 2^16-1.
type TID uint64

// MakeTID packs a page and slot number.
func MakeTID(page, slot int) TID {
	return TID(uint64(page)<<16 | uint64(slot)&0xFFFF)
}

// Page returns the page number.
func (t TID) Page() int { return int(t >> 16) }

// Slot returns the slot number within the page.
func (t TID) Slot() int { return int(t & 0xFFFF) }

// String renders like "(3,14)".
func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page(), t.Slot()) }
