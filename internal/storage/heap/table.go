package heap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/datacase/datacase/internal/btree"
	"github.com/datacase/datacase/internal/wal"
)

// Common errors.
var (
	// ErrKeyExists is returned by Insert when a live tuple with the key
	// already exists.
	ErrKeyExists = errors.New("heap: key already exists")
	// ErrKeyNotFound is returned by Update/Delete on absent keys.
	ErrKeyNotFound = errors.New("heap: key not found")
)

// Counters accumulate the physical work a table has performed. The
// benchmark harness reads them to explain where time went; tests assert
// the mechanics (e.g. dead tuples really are skipped by scans).
type Counters struct {
	TuplesInserted  uint64
	TuplesUpdated   uint64
	TuplesDeleted   uint64
	PagesAllocated  uint64
	SeqScans        uint64
	PagesScanned    uint64
	TuplesScanned   uint64
	DeadSkipped     uint64
	IndexLookups    uint64
	VacuumRuns      uint64
	VacuumFullRuns  uint64
	TuplesReclaimed uint64
}

// counters is the internal, race-free representation: read paths bump
// these under RLock, so they must be atomic.
type counters struct {
	tuplesInserted  atomic.Uint64
	tuplesUpdated   atomic.Uint64
	tuplesDeleted   atomic.Uint64
	pagesAllocated  atomic.Uint64
	seqScans        atomic.Uint64
	pagesScanned    atomic.Uint64
	tuplesScanned   atomic.Uint64
	deadSkipped     atomic.Uint64
	indexLookups    atomic.Uint64
	vacuumRuns      atomic.Uint64
	vacuumFullRuns  atomic.Uint64
	tuplesReclaimed atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		TuplesInserted:  c.tuplesInserted.Load(),
		TuplesUpdated:   c.tuplesUpdated.Load(),
		TuplesDeleted:   c.tuplesDeleted.Load(),
		PagesAllocated:  c.pagesAllocated.Load(),
		SeqScans:        c.seqScans.Load(),
		PagesScanned:    c.pagesScanned.Load(),
		TuplesScanned:   c.tuplesScanned.Load(),
		DeadSkipped:     c.deadSkipped.Load(),
		IndexLookups:    c.indexLookups.Load(),
		VacuumRuns:      c.vacuumRuns.Load(),
		VacuumFullRuns:  c.vacuumFullRuns.Load(),
		TuplesReclaimed: c.tuplesReclaimed.Load(),
	}
}

// Table is a heap table with a primary B+tree index on the key. It is
// safe for concurrent use (a single RWMutex serializes writers; reads
// share).
type Table struct {
	name string

	mu    sync.RWMutex
	pages []*page
	index *btree.Tree // key -> TID of the latest live version
	// fsm is the free-space map: pages believed to have reusable space.
	// Like PostgreSQL's FSM it is populated by vacuum and consulted by
	// inserts before extending the relation. fsmSet deduplicates.
	fsm    []int
	fsmSet map[int]bool
	// dirty is the visibility-map analogue: pages known to contain dead
	// tuples, so lazy VACUUM visits only them.
	dirty map[int]bool
	// lastPage is the current insertion target for fresh space.
	lastPage int

	log   *wal.Log // optional; nil disables logging
	stats counters
}

// NewTable returns an empty table. A nil log disables write-ahead
// logging (used by substrates that keep their own logs).
func NewTable(name string, log *wal.Log) *Table {
	t := &Table{
		name:     name,
		index:    btree.New(),
		fsmSet:   make(map[int]bool),
		dirty:    make(map[int]bool),
		log:      log,
		lastPage: -1,
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Log returns the table's write-ahead log (nil when logging is
// disabled). The compliance layer reads commit statistics off it.
func (t *Table) Log() *wal.Log { return t.log }

// Insert adds a new tuple. It fails with ErrKeyExists if a live tuple
// with the key exists.
func (t *Table) Insert(key, value []byte) (TID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.index.Get(key); ok {
		return 0, fmt.Errorf("%w: %q", ErrKeyExists, key)
	}
	tid := t.place(key, value)
	t.index.Put(key, uint64(tid))
	t.stats.tuplesInserted.Add(1)
	if t.log != nil {
		t.log.Append(wal.RecInsert, key, value)
	}
	return tid, nil
}

// InsertBatch adds N new tuples under one lock acquisition and one WAL
// group submission. It is all-or-nothing: every key is checked against
// the index (and against its predecessors in the batch) before any
// tuple is placed, so a duplicate fails the whole batch with
// ErrKeyExists and leaves the table and log untouched.
func (t *Table) InsertBatch(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("heap: InsertBatch keys/values length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, k := range keys {
		if _, ok := t.index.Get(k); ok {
			return fmt.Errorf("%w: %q", ErrKeyExists, k)
		}
		for j := 0; j < i; j++ {
			if string(keys[j]) == string(k) {
				return fmt.Errorf("%w: %q", ErrKeyExists, k)
			}
		}
	}
	for i, k := range keys {
		tid := t.place(k, values[i])
		t.index.Put(k, uint64(tid))
	}
	t.stats.tuplesInserted.Add(uint64(len(keys)))
	if t.log != nil {
		t.log.AppendBatch(wal.RecInsert, keys, values)
	}
	return nil
}

// place writes the tuple into a page with space, preferring FSM pages,
// then the current tail page, then a fresh page. Caller holds mu.
func (t *Table) place(key, value []byte) TID {
	// Try free-space-map pages first (space reclaimed by vacuum).
	for len(t.fsm) > 0 {
		pi := t.fsm[len(t.fsm)-1]
		if s, ok := t.pages[pi].insert(key, value); ok {
			return MakeTID(pi, s)
		}
		// Page full: drop it from the FSM and try the next.
		t.fsm = t.fsm[:len(t.fsm)-1]
		delete(t.fsmSet, pi)
	}
	if t.lastPage >= 0 {
		if s, ok := t.pages[t.lastPage].insert(key, value); ok {
			return MakeTID(t.lastPage, s)
		}
	}
	p := newPage()
	t.pages = append(t.pages, p)
	t.lastPage = len(t.pages) - 1
	t.stats.pagesAllocated.Add(1)
	s, ok := p.insert(key, value)
	if !ok {
		panic(fmt.Sprintf("heap: tuple larger than page (%d+%d bytes)", len(key), len(value)))
	}
	return MakeTID(t.lastPage, s)
}

// BulkLoad fills an empty table from an iterator of key/value pairs
// without writing per-row WAL records: the recovery path restores a
// checkpoint image through it and then re-checkpoints the log, so the
// rows stay recoverable without being re-logged one by one. It returns
// the number of rows loaded and fails if the table already holds tuples
// or a key repeats.
func (t *Table) BulkLoad(next func() (key, value []byte, ok bool)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.index.Len() > 0 {
		return 0, fmt.Errorf("heap: BulkLoad into non-empty table %q", t.name)
	}
	n := 0
	for {
		k, v, ok := next()
		if !ok {
			return n, nil
		}
		if _, dup := t.index.Get(k); dup {
			return n, fmt.Errorf("%w: %q", ErrKeyExists, k)
		}
		tid := t.place(k, v)
		t.index.Put(k, uint64(tid))
		t.stats.tuplesInserted.Add(1)
		n++
	}
}

// Update replaces the value under key MVCC-style: the old version is
// marked dead in place and a new version is written elsewhere. Without a
// vacuum the old version's bytes stay in the page.
func (t *Table) Update(key, value []byte) (TID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.index.Get(key)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	oldTID := TID(old)
	t.pages[oldTID.Page()].kill(oldTID.Slot())
	t.dirty[oldTID.Page()] = true
	tid := t.place(key, value)
	t.index.Put(key, uint64(tid))
	t.stats.tuplesUpdated.Add(1)
	if t.log != nil {
		t.log.Append(wal.RecUpdate, key, value)
	}
	return tid, nil
}

// Upsert inserts or updates, returning the new TID.
func (t *Table) Upsert(key, value []byte) (TID, error) {
	t.mu.Lock()
	has := t.index.Has(key)
	t.mu.Unlock()
	if has {
		return t.Update(key, value)
	}
	tid, err := t.Insert(key, value)
	if errors.Is(err, ErrKeyExists) {
		return t.Update(key, value)
	}
	return tid, err
}

// Delete marks the tuple dead (like setting xmax): the index entry goes
// away but the tuple bytes remain in the page until a vacuum.
func (t *Table) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.index.Get(key)
	if !ok {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	tid := TID(old)
	t.pages[tid.Page()].kill(tid.Slot())
	t.dirty[tid.Page()] = true
	t.index.Delete(key)
	t.stats.tuplesDeleted.Add(1)
	if t.log != nil {
		t.log.Append(wal.RecDelete, key, nil)
	}
	return nil
}

// Get returns a copy of the value under key.
func (t *Table) Get(key []byte) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.statsIndexLookup()
	raw, ok := t.index.Get(key)
	if !ok {
		return nil, false
	}
	tid := TID(raw)
	_, v, ok := t.pages[tid.Page()].read(tid.Slot())
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// statsIndexLookup bumps the lookup counter atomically so concurrent
// readers (under RLock) do not race.
func (t *Table) statsIndexLookup() { t.stats.indexLookups.Add(1) }

// Has reports whether a live tuple with the key exists.
func (t *Table) Has(key []byte) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.index.Has(key)
}

// SeqScan visits every live tuple in physical order until fn returns
// false. Dead tuples are skipped, but skipping them costs work — the
// mechanics behind Figure 4(a). The key/value slices passed to fn alias
// page memory and must not be retained.
func (t *Table) SeqScan(fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var pages, tuples, dead uint64
	defer func() {
		t.stats.seqScans.Add(1)
		t.stats.pagesScanned.Add(pages)
		t.stats.tuplesScanned.Add(tuples)
		t.stats.deadSkipped.Add(dead)
	}()
	for _, p := range t.pages {
		pages++
		for i := range p.slots {
			k, v, live, ok := p.readAny(i)
			if !ok {
				continue
			}
			tuples++
			if !live {
				dead++
				continue
			}
			if !fn(k, v) {
				return
			}
		}
	}
}

// IndexRange visits live tuples with lo <= key < hi in key order. A nil
// hi scans to the end.
func (t *Table) IndexRange(lo, hi []byte, fn func(key, value []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.index.AscendRange(lo, hi, func(k []byte, raw uint64) bool {
		tid := TID(raw)
		_, v, ok := t.pages[tid.Page()].read(tid.Slot())
		if !ok {
			return true
		}
		return fn(k, v)
	})
}

// Len returns the number of live tuples.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.index.Len()
}

// Stats returns a snapshot of the work counters.
func (t *Table) Stats() Counters { return t.stats.snapshot() }

// SpaceStats describes the physical footprint of the table.
type SpaceStats struct {
	Pages      int
	LiveTuples int
	DeadTuples int
	LiveBytes  int64
	DeadBytes  int64
	// TotalBytes is pages × PageSize plus line-pointer overhead: the
	// size of the relation on "disk".
	TotalBytes int64
	// IndexBytes approximates the primary index footprint.
	IndexBytes int64
}

// Space returns the physical footprint.
func (t *Table) Space() SpaceStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s SpaceStats
	s.Pages = len(t.pages)
	for _, p := range t.pages {
		s.LiveTuples += p.live
		s.DeadTuples += p.dead
		s.LiveBytes += int64(p.liveDataBytes())
		s.DeadBytes += int64(p.deadDataBytes())
	}
	s.TotalBytes = int64(len(t.pages)) * PageSize
	// Index: roughly one (key copy + TID + node overhead) per entry.
	s.IndexBytes = int64(t.index.Len()) * 48
	return s
}

// DeadRatio returns dead/(live+dead) tuples, or 0 for an empty table.
// Autovacuum policies trigger on it.
func (t *Table) DeadRatio() float64 {
	sp := t.Space()
	total := sp.LiveTuples + sp.DeadTuples
	if total == 0 {
		return 0
	}
	return float64(sp.DeadTuples) / float64(total)
}
