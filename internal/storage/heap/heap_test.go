package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacase/datacase/internal/wal"
)

func k(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("value-%06d-payload", i)) }

func TestInsertGet(t *testing.T) {
	tb := NewTable("t", nil)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i := 0; i < n; i++ {
		got, ok := tb.Get(k(i))
		if !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, ok)
		}
	}
	if _, ok := tb.Get([]byte("missing")); ok {
		t.Fatal("Get on missing key")
	}
}

func TestInsertDuplicate(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Insert(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(k(1), v(2)); !errors.Is(err, ErrKeyExists) {
		t.Fatalf("duplicate insert err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Insert(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Update(k(1), []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Get(k(1))
	if string(got) != "new" {
		t.Fatalf("Get after update = %q", got)
	}
	if _, err := tb.Update([]byte("nope"), nil); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	// The old version is dead but physically present.
	sp := tb.Space()
	if sp.DeadTuples != 1 {
		t.Fatalf("DeadTuples = %d, want 1", sp.DeadTuples)
	}
}

func TestUpsert(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Upsert(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Upsert(k(1), []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Get(k(1))
	if string(got) != "two" {
		t.Fatalf("Get = %q", got)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestDeleteLeavesDeadTuple(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Insert(k(1), []byte("SENSITIVE-PAYLOAD")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(k(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Get(k(1)); ok {
		t.Fatal("deleted key still readable")
	}
	if err := tb.Delete(k(1)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	// Logically gone, physically retained — the paper's hazard.
	if !tb.ForensicScan([]byte("SENSITIVE-PAYLOAD")) {
		t.Fatal("deleted data should be forensically recoverable before vacuum")
	}
	keys, vals := tb.ForensicDeadTuples()
	if len(keys) != 1 || string(vals[0]) != "SENSITIVE-PAYLOAD" {
		t.Fatalf("forensic dead tuples = %q %q", keys, vals)
	}
}

func TestVacuumRemovesDeadBytes(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Insert(k(1), []byte("SENSITIVE-PAYLOAD")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(k(2), []byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(k(1)); err != nil {
		t.Fatal(err)
	}
	vs := tb.Vacuum()
	if vs.TuplesReclaimed != 1 {
		t.Fatalf("TuplesReclaimed = %d", vs.TuplesReclaimed)
	}
	if tb.ForensicScan([]byte("SENSITIVE-PAYLOAD")) {
		t.Fatal("vacuum left dead bytes behind")
	}
	if got, ok := tb.Get(k(2)); !ok || string(got) != "keep-me" {
		t.Fatalf("live tuple damaged by vacuum: %q %v", got, ok)
	}
	sp := tb.Space()
	if sp.DeadTuples != 0 || sp.DeadBytes != 0 {
		t.Fatalf("space after vacuum: %+v", sp)
	}
}

func TestVacuumMakesSpaceReusable(t *testing.T) {
	tb := NewTable("t", nil)
	const n = 4000
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := tb.Space().Pages
	// Delete half, vacuum, re-insert the same volume: the table should
	// not grow (much), because inserts reuse FSM space.
	for i := 0; i < n/2; i++ {
		if err := tb.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	tb.Vacuum()
	for i := n; i < n+n/2; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	pagesAfter := tb.Space().Pages
	if pagesAfter > pagesBefore+1 {
		t.Fatalf("pages grew from %d to %d despite vacuum", pagesBefore, pagesAfter)
	}
}

func TestNoVacuumTableGrows(t *testing.T) {
	tb := NewTable("t", nil)
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := tb.Space().Pages
	// Churn updates without vacuuming: dead versions accumulate and the
	// relation grows.
	for round := 0; round < 5; round++ {
		for i := 0; i < n; i++ {
			if _, err := tb.Update(k(i), v(i+round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sp := tb.Space()
	if sp.Pages <= pagesBefore {
		t.Fatalf("pages did not grow under churn without vacuum: %d -> %d", pagesBefore, sp.Pages)
	}
	if sp.DeadTuples != 5*n {
		t.Fatalf("DeadTuples = %d, want %d", sp.DeadTuples, 5*n)
	}
}

func TestVacuumFullShrinksRelation(t *testing.T) {
	tb := NewTable("t", nil)
	const n = 4000
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			if err := tb.Delete(k(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pagesBefore := tb.Space().Pages
	vs := tb.VacuumFull()
	if vs.TuplesReclaimed != n/2 {
		t.Fatalf("TuplesReclaimed = %d", vs.TuplesReclaimed)
	}
	if vs.PagesFreed <= 0 {
		t.Fatal("VACUUM FULL freed no pages")
	}
	sp := tb.Space()
	if sp.Pages >= pagesBefore {
		t.Fatalf("relation did not shrink: %d -> %d", pagesBefore, sp.Pages)
	}
	// All survivors readable through the rebuilt index.
	for i := 0; i < n; i++ {
		got, ok := tb.Get(k(i))
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", i)
			}
		} else if !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("survivor %d lost: %q %v", i, got, ok)
		}
	}
	if tb.Len() != n/2 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestSeqScanSkipsDeadAndCounts(t *testing.T) {
	tb := NewTable("t", nil)
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := tb.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	tb.SeqScan(func(key, value []byte) bool {
		count++
		return true
	})
	if count != n/2 {
		t.Fatalf("scan visited %d live tuples, want %d", count, n/2)
	}
	st := tb.Stats()
	if st.DeadSkipped != n/2 {
		t.Fatalf("DeadSkipped = %d, want %d", st.DeadSkipped, n/2)
	}
	// After vacuum the same scan does less work.
	tb.Vacuum()
	tb.SeqScan(func(key, value []byte) bool { return true })
	st2 := tb.Stats()
	if st2.DeadSkipped != st.DeadSkipped {
		t.Fatalf("scan after vacuum still skipped dead tuples: %d -> %d",
			st.DeadSkipped, st2.DeadSkipped)
	}
}

func TestSeqScanEarlyStop(t *testing.T) {
	tb := NewTable("t", nil)
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	tb.SeqScan(func(key, value []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("visited %d", count)
	}
}

func TestIndexRange(t *testing.T) {
	tb := NewTable("t", nil)
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	tb.IndexRange(k(10), k(15), func(key, value []byte) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != 5 || got[0] != string(k(10)) || got[4] != string(k(14)) {
		t.Fatalf("range = %v", got)
	}
}

func TestSanitize(t *testing.T) {
	tb := NewTable("t", nil)
	if _, err := tb.Insert(k(1), []byte("TOP-SECRET")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(k(2), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(k(1)); err != nil {
		t.Fatal(err)
	}
	// Single sanitize pass removes remnants even without vacuum.
	if n := tb.SanitizePass(0x00); n <= 0 {
		t.Fatal("sanitize overwrote nothing")
	}
	if tb.ForensicScan([]byte("TOP-SECRET")) {
		t.Fatal("remnants survive sanitization")
	}
	if !tb.VerifySanitized(0x00) {
		t.Fatal("VerifySanitized failed after pass")
	}
	if got, ok := tb.Get(k(2)); !ok || string(got) != "keep" {
		t.Fatalf("live data damaged by sanitize: %q %v", got, ok)
	}
}

func TestWALIntegration(t *testing.T) {
	log := wal.New()
	tb := NewTable("t", log)
	if _, err := tb.Insert(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Update(k(1), v(2)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(k(1)); err != nil {
		t.Fatal(err)
	}
	tb.Vacuum()
	var types []wal.RecordType
	log.Replay(0, func(r wal.Record) bool {
		types = append(types, r.Type)
		return true
	})
	want := []wal.RecordType{wal.RecInsert, wal.RecUpdate, wal.RecDelete, wal.RecVacuum}
	if len(types) != len(want) {
		t.Fatalf("log types = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("log types = %v, want %v", types, want)
		}
	}
}

func TestDeadRatio(t *testing.T) {
	tb := NewTable("t", nil)
	if tb.DeadRatio() != 0 {
		t.Fatal("empty table dead ratio != 0")
	}
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := tb.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r := tb.DeadRatio(); r < 0.49 || r > 0.51 {
		t.Fatalf("DeadRatio = %f, want ~0.5", r)
	}
}

func TestTIDPacking(t *testing.T) {
	cases := []struct{ page, slot int }{{0, 0}, {1, 2}, {70000, 65535}, {1 << 30, 7}}
	for _, c := range cases {
		tid := MakeTID(c.page, c.slot)
		if tid.Page() != c.page || tid.Slot() != c.slot {
			t.Fatalf("TID round trip (%d,%d) -> (%d,%d)", c.page, c.slot, tid.Page(), tid.Slot())
		}
	}
	if MakeTID(3, 14).String() != "(3,14)" {
		t.Fatal("TID.String wrong")
	}
}

// Property: a random workload against a reference map keeps Get/Len
// consistent, across interleaved vacuums.
func TestRandomWorkloadAgainstReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tb := NewTable("t", nil)
		ref := make(map[string]string)
		for op := 0; op < 3000; op++ {
			key := fmt.Sprintf("key-%d", r.Intn(300))
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				val := fmt.Sprintf("val-%d", op)
				if _, err := tb.Upsert([]byte(key), []byte(val)); err != nil {
					return false
				}
				ref[key] = val
			case 4, 5:
				err := tb.Delete([]byte(key))
				_, inRef := ref[key]
				if (err == nil) != inRef {
					return false
				}
				delete(ref, key)
			case 6:
				got, ok := tb.Get([]byte(key))
				want, inRef := ref[key]
				if ok != inRef || (ok && string(got) != want) {
					return false
				}
			case 7:
				if r.Intn(4) == 0 {
					tb.Vacuum()
				}
			case 8:
				if r.Intn(10) == 0 {
					tb.VacuumFull()
				}
			case 9:
				count := 0
				tb.SeqScan(func(_, _ []byte) bool { count++; return true })
				if count != len(ref) {
					return false
				}
			}
		}
		return tb.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: vacuum preserves exactly the live set.
func TestVacuumPreservesLiveSetProperty(t *testing.T) {
	f := func(seed int64, full bool) bool {
		r := rand.New(rand.NewSource(seed))
		tb := NewTable("t", nil)
		live := make(map[string]bool)
		for i := 0; i < 500; i++ {
			key := fmt.Sprintf("k%d", i)
			if _, err := tb.Insert([]byte(key), v(i)); err != nil {
				return false
			}
			live[key] = true
		}
		for key := range live {
			if r.Intn(2) == 0 {
				if tb.Delete([]byte(key)) != nil {
					return false
				}
				delete(live, key)
			}
		}
		if full {
			tb.VacuumFull()
		} else {
			tb.Vacuum()
		}
		if tb.Len() != len(live) {
			return false
		}
		seen := 0
		okAll := true
		tb.SeqScan(func(key, _ []byte) bool {
			if !live[string(key)] {
				okAll = false
				return false
			}
			seen++
			return true
		})
		return okAll && seen == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tb := NewTable("b", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = tb.Insert(k(i), v(i))
	}
}

func BenchmarkGetAfterChurnNoVacuum(b *testing.B) {
	tb := churnedTable(20000, 5, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(k(i % 20000))
	}
}

func BenchmarkSeqScanNoVacuum(b *testing.B) {
	tb := churnedTable(5000, 5, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.SeqScan(func(_, _ []byte) bool { return true })
	}
}

func BenchmarkSeqScanWithVacuum(b *testing.B) {
	tb := churnedTable(5000, 5, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.SeqScan(func(_, _ []byte) bool { return true })
	}
}

// churnedTable builds a table of n rows and churns every row `rounds`
// times, optionally vacuuming between rounds.
func churnedTable(n, rounds int, vacuum bool) *Table {
	tb := NewTable("b", nil)
	for i := 0; i < n; i++ {
		_, _ = tb.Insert(k(i), v(i))
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			_, _ = tb.Update(k(i), v(i+round))
		}
		if vacuum {
			tb.Vacuum()
		}
	}
	return tb
}

func TestBulkLoad(t *testing.T) {
	tb := NewTable("bulk", wal.New())
	const n = 500
	i := 0
	loaded, err := tb.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		key, val := k(i), v(i)
		i++
		return key, val, true
	})
	if err != nil || loaded != n {
		t.Fatalf("BulkLoad = %d, %v", loaded, err)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Rows are indexed and readable like ordinary inserts...
	for _, probe := range []int{0, 1, 250, n - 1} {
		got, ok := tb.Get(k(probe))
		if !ok || !bytes.Equal(got, v(probe)) {
			t.Fatalf("Get(%d) = %q, %v", probe, got, ok)
		}
	}
	// ...but no per-row WAL records were written: the recovery path
	// re-checkpoints instead of re-logging a restored snapshot.
	if tb.Log().Len() != 0 {
		t.Fatalf("BulkLoad logged %d records", tb.Log().Len())
	}
	// Subsequent ordinary mutations log as usual.
	if _, err := tb.Insert(k(n), v(n)); err != nil {
		t.Fatal(err)
	}
	if tb.Log().Len() != 1 {
		t.Fatalf("post-load insert logged %d records", tb.Log().Len())
	}
}

func TestBulkLoadRejectsNonEmptyAndDuplicates(t *testing.T) {
	tb := NewTable("bulk", nil)
	if _, err := tb.Insert(k(0), v(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BulkLoad(func() ([]byte, []byte, bool) { return nil, nil, false }); err == nil {
		t.Fatal("BulkLoad into a non-empty table succeeded")
	}

	dup := NewTable("dup", nil)
	seq := [][]byte{k(1), k(2), k(1)}
	i := 0
	_, err := dup.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(seq) {
			return nil, nil, false
		}
		key := seq[i]
		i++
		return key, v(0), true
	})
	if !errors.Is(err, ErrKeyExists) {
		t.Fatalf("duplicate key: err = %v", err)
	}
}
