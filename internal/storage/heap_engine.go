package storage

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/datacase/datacase/internal/storage/heap"
	"github.com/datacase/datacase/internal/wal"
)

// Heap adapts heap.Table to the Engine contract: the PostgreSQL-style
// backend, where deletes mark tuples dead in place and the vacuum
// family physically reclaims them. It implements Vacuumer and (by
// promotion) cryptox.Sanitizable.
type Heap struct {
	*heap.Table
	bulkLoads atomic.Uint64
}

// NewHeap returns a heap-backed engine. A nil log disables write-ahead
// logging.
func NewHeap(name string, log *wal.Log) *Heap {
	return &Heap{Table: heap.NewTable(name, log)}
}

// WrapHeap adapts an existing table.
func WrapHeap(t *heap.Table) *Heap { return &Heap{Table: t} }

// mapHeapErr translates the heap's sentinels into the Engine
// vocabulary, keeping the native error in the chain.
func mapHeapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, heap.ErrKeyExists):
		return fmt.Errorf("%w: %v", ErrKeyExists, err)
	case errors.Is(err, heap.ErrKeyNotFound):
		return fmt.Errorf("%w: %v", ErrKeyNotFound, err)
	default:
		return err
	}
}

// Insert adds a new tuple.
func (h *Heap) Insert(key, value []byte) error {
	_, err := h.Table.Insert(key, value)
	return mapHeapErr(err)
}

// InsertBatch admits N new tuples under one table-lock acquisition and
// one WAL group submission (BatchInserter). All-or-nothing on
// ErrKeyExists.
func (h *Heap) InsertBatch(keys, values [][]byte) error {
	return mapHeapErr(h.Table.InsertBatch(keys, values))
}

// Update replaces the value under key MVCC-style.
func (h *Heap) Update(key, value []byte) error {
	_, err := h.Table.Update(key, value)
	return mapHeapErr(err)
}

// Upsert inserts or updates.
func (h *Heap) Upsert(key, value []byte) error {
	_, err := h.Table.Upsert(key, value)
	return mapHeapErr(err)
}

// Delete marks the tuple dead.
func (h *Heap) Delete(key []byte) error {
	return mapHeapErr(h.Table.Delete(key))
}

// BulkLoad fills an empty table without per-row logging.
func (h *Heap) BulkLoad(next func() (key, value []byte, ok bool)) (int, error) {
	n, err := h.Table.BulkLoad(next)
	if err == nil {
		h.bulkLoads.Add(1)
	}
	return n, mapHeapErr(err)
}

// Stats maps the table's counters onto the Engine vocabulary.
func (h *Heap) Stats() Stats {
	c := h.Table.Stats()
	return Stats{
		Inserts:          c.TuplesInserted,
		Updates:          c.TuplesUpdated,
		Deletes:          c.TuplesDeleted,
		Lookups:          c.IndexLookups,
		Scans:            c.SeqScans,
		MaintenanceRuns:  c.VacuumRuns + c.VacuumFullRuns,
		EntriesReclaimed: c.TuplesReclaimed,
		BulkLoads:        h.bulkLoads.Load(),
	}
}

// Space maps the table's footprint onto the Engine vocabulary.
func (h *Heap) Space() SpaceStats {
	sp := h.Table.Space()
	return SpaceStats{
		LiveEntries: sp.LiveTuples,
		DeadEntries: sp.DeadTuples,
		LiveBytes:   sp.LiveBytes,
		DeadBytes:   sp.DeadBytes,
		IndexBytes:  sp.IndexBytes,
		TotalBytes:  sp.TotalBytes + sp.IndexBytes,
	}
}

// VacuumLazy runs the lazy VACUUM and returns the tuples reclaimed.
func (h *Heap) VacuumLazy() int { return h.Table.Vacuum().TuplesReclaimed }

// VacuumFullRewrite runs VACUUM FULL and returns the tuples reclaimed.
func (h *Heap) VacuumFullRewrite() int { return h.Table.VacuumFull().TuplesReclaimed }
