// Package storage defines the pluggable storage-engine contract of the
// compliance layer. The paper's central contrast (§1, §3.1, Figure
// 4(a)) is between deletion groundings: a PostgreSQL-style heap where
// DELETE+VACUUM physically reclaims erased bytes, and a Cassandra-style
// LSM tree where a delete is a tombstone and the erased bytes stay
// physically resident until compaction. Engine is the seam that lets a
// compliance deployment run on either — same WAL, same recovery, same
// erasure verification — so both sides of the contrast are executable
// on the full stack, not just in isolated micro-benchmarks.
//
// The implementations are NewHeap (internal/storage/heap), NewLSM
// (internal/storage/lsm), and NewMmap (internal/storage/mheap), the
// durable-region heap whose pages ARE the durable state. Capability
// sub-interfaces express what only some backends can do: Vacuumer is
// the heap-family reclamation, Purger is the LSM's erase-aware
// compaction (purge obligations that override the tombstone GC grace),
// and RegionBacked is the mmap backend's serialization-free
// checkpoint/recovery path.
package storage

import (
	"errors"

	"github.com/datacase/datacase/internal/wal"
)

// Engine errors. Adapters translate backend-native sentinels into
// these, so callers switch on one vocabulary.
var (
	// ErrKeyExists is returned by Insert (and BulkLoad) when a live
	// record with the key already exists.
	ErrKeyExists = errors.New("storage: key already exists")
	// ErrKeyNotFound is returned by Update and Delete on absent keys.
	ErrKeyNotFound = errors.New("storage: key not found")
)

// Engine is the storage contract of a compliance deployment's data
// table. Implementations are safe for concurrent use; mutations are
// durably logged to the engine's WAL (Log) when one is attached, with
// the same record vocabulary (RecInsert/RecUpdate/RecDelete) on every
// backend, so crash recovery replays identically whatever the engine.
//
// Read-snapshot guarantee: the pure read operations — Get, Has,
// SeqScan, Len, Stats, Space, ForensicScan — run under shared locks (or
// equivalent snapshots) and therefore (a) never block each other, so
// concurrent readers scale instead of serializing, and (b) each observe
// a state that was current at some instant during the call: a Get never
// returns a torn value or a half-applied mutation, and a SeqScan visits
// a single consistent version of the table. Mutations exclude readers
// for their duration, which is what makes the snapshot trivial; an
// engine swapping in MVCC reads may weaken the exclusion but must keep
// the per-call consistency. The compliance layer's shared-lock read
// path is built on this guarantee.
type Engine interface {
	// Name returns the table name (it names the WAL segment too).
	Name() string
	// Log returns the engine's write-ahead log; nil when logging is
	// disabled (substrates that keep their own logs).
	Log() *wal.Log
	// Insert adds a new record; ErrKeyExists if the key is live.
	Insert(key, value []byte) error
	// Update replaces the value under key; ErrKeyNotFound when absent.
	// The replaced version's bytes remain physically resident until the
	// engine's reclamation runs (vacuum or compaction).
	Update(key, value []byte) error
	// Upsert inserts or updates.
	Upsert(key, value []byte) error
	// Delete erases key under the engine's native grounding (dead tuple
	// or tombstone); ErrKeyNotFound when absent.
	Delete(key []byte) error
	// Get returns a copy of the live value under key.
	Get(key []byte) ([]byte, bool)
	// Has reports whether a live record with the key exists.
	Has(key []byte) bool
	// SeqScan visits every live record until fn returns false. Visit
	// order is backend-specific (physical order on the heap, key order
	// on the LSM); callers must not rely on it. The slices passed to fn
	// may alias engine memory and must not be retained. Both
	// implementations hold a scan-long read lock, so fn must not call
	// back into the engine's mutating methods (collect first, mutate
	// after).
	SeqScan(fn func(key, value []byte) bool)
	// BulkLoad fills an empty engine from an iterator without writing
	// per-record WAL records (checkpoint restore). It returns the
	// number of records loaded and fails on a non-empty engine or a
	// repeated key.
	BulkLoad(next func() (key, value []byte, ok bool)) (int, error)
	// Len returns the number of live records.
	Len() int
	// Stats returns a snapshot of the engine's work counters.
	Stats() Stats
	// Space returns the engine's physical footprint.
	Space() SpaceStats
	// ForensicScan reports whether the byte pattern is physically
	// present anywhere — including dead tuples, shadowed versions and
	// tombstoned data. Erasure verification uses it to prove (or
	// disprove) that erased data is physically gone.
	ForensicScan(pattern []byte) bool
}

// Stats is the backend-neutral work-counter snapshot.
type Stats struct {
	Inserts uint64
	Updates uint64
	Deletes uint64
	// Lookups counts keyed reads (index probes / LSM gets).
	Lookups uint64
	// Scans counts sequential scans started.
	Scans uint64
	// MaintenanceRuns counts reclamation passes: vacuums on the heap,
	// compactions on the LSM.
	MaintenanceRuns uint64
	// EntriesReclaimed counts physical versions removed by maintenance:
	// dead tuples reclaimed, or tombstones GC'd.
	EntriesReclaimed uint64
	// PurgesRegistered / PurgesDischarged count compliance purge
	// obligations (zero on engines without a Purger).
	PurgesRegistered uint64
	PurgesDischarged uint64
	// BulkLoads counts BulkLoad calls (checkpoint restores and shard
	// migrations), which bypass per-row logging and counting.
	BulkLoads uint64
}

// SpaceStats is the backend-neutral footprint report.
type SpaceStats struct {
	// LiveEntries / DeadEntries count authoritative records vs
	// physically present but logically erased ones (dead tuples;
	// tombstones plus shadowed versions).
	LiveEntries int
	DeadEntries int
	// LiveBytes / DeadBytes split the record bytes the same way.
	LiveBytes int64
	DeadBytes int64
	// IndexBytes approximates the lookup-structure footprint (primary
	// B+tree index; bloom filters).
	IndexBytes int64
	// TotalBytes is the whole engine on "disk".
	TotalBytes int64
}

// BatchInserter is the bulk-admission capability: both built-in engines
// implement it. InsertBatch admits N new records under one engine-lock
// acquisition and one WAL group submission (contiguous LSNs, one sync),
// instead of N of each. It is all-or-nothing: if any key is already
// live the whole batch fails with ErrKeyExists (wrapped with the
// offending key) and no record is inserted or logged, so callers never
// see a half-admitted batch. Engines without the capability fall back
// to per-record Insert.
type BatchInserter interface {
	InsertBatch(keys, values [][]byte) error
}

// Vacuumer is the reclamation capability of PostgreSQL-style engines:
// the compliance layer's vacuum groundings (DELETE+VACUUM,
// DELETE+VACUUM FULL) require it.
type Vacuumer interface {
	// DeadRatio returns dead/(live+dead) entries; autovacuum policies
	// trigger on it.
	DeadRatio() float64
	// VacuumLazy reclaims dead entries in place and returns how many.
	VacuumLazy() int
	// VacuumFullRewrite rewrites the store densely and returns how many
	// entries it reclaimed.
	VacuumFullRewrite() int
}

// RegionBacked is the capability of durable-region engines (the mmap
// backend): rows live in a flat byte region that itself survives a
// crash, so checkpoints and recovery never serialize rows through WAL
// segment images. The compliance layer branches on it — checkpoints
// become region snapshots plus a row-free WAL marker, and recovery
// re-attaches a captured region instead of decoding a checkpoint
// payload.
type RegionBacked interface {
	// RegionSnapshot returns a copy of the durable region, the analogue
	// of what a crash leaves in an mmap'd file.
	RegionSnapshot() []byte
	// AppliedLSN is the WAL LSN of the last mutation the region
	// reflects; recovery skips WAL tail records at or below it.
	AppliedLSN() wal.LSN
	// CheckpointRegion snapshots the page table and resets the embedded
	// redo log, returning the pages dirtied since the last snapshot.
	CheckpointRegion() int
}

// Purger is the erase-aware-compaction capability of LSM-style
// engines: deletes leave shadowed versions physically resident, and a
// purge obligation bounds how long. The compliance layer registers an
// obligation for every regulation-mandated delete, turning the
// "legally hazardous" tombstone grounding into a compliance-bounded
// one.
type Purger interface {
	// RegisterPurge records the obligation: every physical version of
	// key at or below the current sequence must be gone within the
	// engine's bounded operation window, GC grace notwithstanding.
	RegisterPurge(key []byte)
	// PendingPurges reports undischarged obligations.
	PendingPurges() int
	// ForcePurge compacts now and returns the obligations discharged.
	ForcePurge() int
}
