package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/datacase/datacase/internal/storage/lsm"
	"github.com/datacase/datacase/internal/wal"
)

// LSM adapts lsm.Store to the Engine contract: the Cassandra-style
// backend, where a delete is an O(1) tombstone write and the deleted
// bytes stay physically resident in older runs until compaction — the
// paper's "legally hazardous" grounding, made compliance-bounded by
// the store's purge obligations (Purger). It implements Purger and
// cryptox.Sanitizable by delegation.
//
// The adapter gives the store the insert/update/delete vocabulary the
// compliance layer speaks (the raw store only has Put/Delete) and logs
// every mutation to the WAL, so an LSM-backed deployment recovers
// through exactly the same replay as a heap-backed one.
type LSM struct {
	name  string
	store *lsm.Store
	log   *wal.Log

	// mu serializes the read-modify-write mutations only (an Insert is
	// an existence check plus a put, which the store alone cannot make
	// atomic). Reads never touch it: Get/Has/SeqScan go straight to the
	// store, whose internal RWMutex admits concurrent readers — the
	// contract's read-snapshot guarantee comes from the store, and
	// concurrent Gets must not serialize on this adapter.
	mu sync.Mutex

	inserts, updates, deletes atomic.Uint64
	scans, bulkLoads          atomic.Uint64
}

// NewLSM returns an LSM-backed engine. A nil log disables write-ahead
// logging.
func NewLSM(name string, log *wal.Log, opts lsm.Options) *LSM {
	return &LSM{name: name, store: lsm.New(opts), log: log}
}

// Name returns the table name.
func (e *LSM) Name() string { return e.name }

// Log returns the engine's write-ahead log (nil when disabled).
func (e *LSM) Log() *wal.Log { return e.log }

// Store exposes the underlying LSM store (backend-specific statistics
// and forensic probes in tests and experiments).
func (e *LSM) Store() *lsm.Store { return e.store }

// Insert adds a new record; the value lands in the memtable and the
// mutation is WAL-logged.
func (e *LSM) Insert(key, value []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store.Live(key) {
		return fmt.Errorf("%w: %q", ErrKeyExists, key)
	}
	e.store.Put(key, value)
	e.inserts.Add(1)
	if e.log != nil {
		e.log.Append(wal.RecInsert, key, value)
	}
	return nil
}

// InsertBatch admits N new records under one adapter-lock acquisition
// and one WAL group submission (BatchInserter). It is all-or-nothing:
// every key (including intra-batch duplicates) is checked live before
// any Put, so a conflict leaves the store and log untouched.
func (e *LSM) InsertBatch(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("storage: InsertBatch keys/values length mismatch")
	}
	if len(keys) == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, k := range keys {
		if e.store.Live(k) {
			return fmt.Errorf("%w: %q", ErrKeyExists, k)
		}
		for j := 0; j < i; j++ {
			if string(keys[j]) == string(k) {
				return fmt.Errorf("%w: %q", ErrKeyExists, k)
			}
		}
	}
	for i, k := range keys {
		e.store.Put(k, values[i])
	}
	e.inserts.Add(uint64(len(keys)))
	if e.log != nil {
		e.log.AppendBatch(wal.RecInsert, keys, values)
	}
	return nil
}

// Update overwrites the record; the old version stays shadowed in
// older runs until compaction (the tombstone-retention hazard applies
// to updates too).
func (e *LSM) Update(key, value []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.store.Live(key) {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	e.store.Put(key, value)
	e.updates.Add(1)
	if e.log != nil {
		e.log.Append(wal.RecUpdate, key, value)
	}
	return nil
}

// Upsert inserts or updates.
func (e *LSM) Upsert(key, value []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec := wal.RecInsert
	if e.store.Live(key) {
		rec = wal.RecUpdate
		e.updates.Add(1)
	} else {
		e.inserts.Add(1)
	}
	e.store.Put(key, value)
	if e.log != nil {
		e.log.Append(rec, key, value)
	}
	return nil
}

// Delete writes a tombstone; older versions remain physically resident
// until a compaction (or a purge obligation) removes them.
func (e *LSM) Delete(key []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.store.Live(key) {
		return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	e.store.Delete(key)
	e.deletes.Add(1)
	if e.log != nil {
		e.log.Append(wal.RecDelete, key, nil)
	}
	return nil
}

// Get returns the live value under key.
func (e *LSM) Get(key []byte) ([]byte, bool) { return e.store.Get(key) }

// Has reports whether key has a live value.
func (e *LSM) Has(key []byte) bool { return e.store.Has(key) }

// SeqScan visits live records in key order.
func (e *LSM) SeqScan(fn func(key, value []byte) bool) {
	e.scans.Add(1)
	e.store.Scan(fn)
}

// BulkLoad fills an empty store without per-record logging (checkpoint
// restore).
func (e *LSM) BulkLoad(next func() (key, value []byte, ok bool)) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.store.Stats(); st.Puts+st.Deletes > 0 {
		return 0, fmt.Errorf("storage: BulkLoad into non-empty lsm store %q", e.name)
	}
	n := 0
	for {
		k, v, ok := next()
		if !ok {
			e.bulkLoads.Add(1)
			return n, nil
		}
		if e.store.Live(k) {
			return n, fmt.Errorf("%w: %q", ErrKeyExists, k)
		}
		e.store.Put(k, v)
		e.inserts.Add(1)
		n++
	}
}

// Len returns the number of live records.
func (e *LSM) Len() int { return e.store.Len() }

// Stats combines the adapter's mutation counters with the store's
// physical-work counters.
func (e *LSM) Stats() Stats {
	c := e.store.Stats()
	return Stats{
		Inserts:          e.inserts.Load(),
		Updates:          e.updates.Load(),
		Deletes:          e.deletes.Load(),
		Lookups:          c.Gets,
		Scans:            e.scans.Load(),
		MaintenanceRuns:  c.Compactions,
		EntriesReclaimed: c.TombstonesGCed,
		PurgesRegistered: c.PurgesRegistered,
		PurgesDischarged: c.PurgesDischarged,
		BulkLoads:        e.bulkLoads.Load(),
	}
}

// Space maps the store's footprint onto the Engine vocabulary: dead
// entries are tombstones plus shadowed versions — the bytes that
// should be gone but are not.
func (e *LSM) Space() SpaceStats {
	sp := e.store.Space()
	return SpaceStats{
		LiveEntries: sp.LiveEntries,
		DeadEntries: sp.Tombstones + sp.ShadowedEntries,
		LiveBytes:   sp.LiveBytes,
		DeadBytes:   sp.DeadBytes,
		IndexBytes:  sp.FilterBytes,
		TotalBytes:  sp.TotalBytes + sp.FilterBytes,
	}
}

// ForensicScan reports whether the pattern is physically present in
// the memtable or any run, shadowed versions included.
func (e *LSM) ForensicScan(pattern []byte) bool { return e.store.ForensicScan(pattern) }

// RegisterPurge records a compliance purge obligation (Purger). A key
// still live at registration is tombstoned by the store, which on a
// WAL-backed engine is a mutation like any other: it must be logged as
// a delete, or crash recovery would replay the key's last value record
// with nothing superseding it and resurrect the "purged" key. The
// compliance layer always Deletes first, so the extra record only
// covers direct Purger use.
func (e *LSM) RegisterPurge(key []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	wasLive := e.store.Live(key)
	e.store.RegisterPurge(key)
	if wasLive {
		e.deletes.Add(1)
		if e.log != nil {
			e.log.Append(wal.RecDelete, key, nil)
		}
	}
}

// PendingPurges reports undischarged obligations (Purger).
func (e *LSM) PendingPurges() int { return e.store.PendingPurges() }

// ForcePurge compacts now and discharges obligations (Purger).
func (e *LSM) ForcePurge() int { return e.store.ForcePurge() }

// SanitizePass removes all tombstones and shadowed versions
// (cryptox.Sanitizable).
func (e *LSM) SanitizePass(pattern byte) int64 { return e.store.SanitizePass(pattern) }

// VerifySanitized reports whether no non-live bytes remain
// (cryptox.Sanitizable).
func (e *LSM) VerifySanitized(pattern byte) bool { return e.store.VerifySanitized(pattern) }
