package storage

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/datacase/datacase/internal/storage/mheap"
	"github.com/datacase/datacase/internal/wal"
)

// Mmap adapts mheap.Table to the Engine contract: the durable-region
// backend, where pages ARE the durable state — mutations are
// redo-logged in-place transactions on a flat byte region, a checkpoint
// is a page-table snapshot instead of any serialization, and recovery
// re-attaches the region rather than decoding a segment image. It
// implements Vacuumer, BatchInserter, RegionBacked, and (by promotion)
// cryptox.Sanitizable.
type Mmap struct {
	*mheap.Table
	bulkLoads atomic.Uint64
}

// NewMmap returns a region-backed engine with default geometry. A nil
// log disables write-ahead logging.
func NewMmap(name string, log *wal.Log) *Mmap {
	return &Mmap{Table: mheap.New(name, log, mheap.Options{})}
}

// NewMmapWithOptions returns a region-backed engine with explicit
// geometry (tests shrink the redo area to force resets).
func NewMmapWithOptions(name string, log *wal.Log, opts mheap.Options) *Mmap {
	return &Mmap{Table: mheap.New(name, log, opts)}
}

// AttachMmap re-opens an engine from a region snapshot, replaying the
// embedded redo tail. The engine takes ownership of the slice.
func AttachMmap(name string, log *wal.Log, region []byte) (*Mmap, error) {
	t, err := mheap.Attach(name, log, region)
	if err != nil {
		return nil, err
	}
	return &Mmap{Table: t}, nil
}

// mapMheapErr translates the region heap's sentinels into the Engine
// vocabulary, keeping the native error in the chain.
func mapMheapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, mheap.ErrKeyExists):
		return fmt.Errorf("%w: %v", ErrKeyExists, err)
	case errors.Is(err, mheap.ErrKeyNotFound):
		return fmt.Errorf("%w: %v", ErrKeyNotFound, err)
	default:
		return err
	}
}

// Insert adds a new tuple.
func (m *Mmap) Insert(key, value []byte) error {
	return mapMheapErr(m.Table.Insert(key, value))
}

// InsertBatch admits N new tuples under one lock acquisition and one
// WAL group submission (BatchInserter). All-or-nothing on ErrKeyExists.
func (m *Mmap) InsertBatch(keys, values [][]byte) error {
	return mapMheapErr(m.Table.InsertBatch(keys, values))
}

// Update replaces the value under key MVCC-style.
func (m *Mmap) Update(key, value []byte) error {
	return mapMheapErr(m.Table.Update(key, value))
}

// Upsert inserts or updates.
func (m *Mmap) Upsert(key, value []byte) error {
	return mapMheapErr(m.Table.Upsert(key, value))
}

// Delete marks the tuple dead.
func (m *Mmap) Delete(key []byte) error {
	return mapMheapErr(m.Table.Delete(key))
}

// BulkLoad fills an empty table without per-row logging.
func (m *Mmap) BulkLoad(next func() (key, value []byte, ok bool)) (int, error) {
	n, err := m.Table.BulkLoad(next)
	if err == nil {
		m.bulkLoads.Add(1)
	}
	return n, mapMheapErr(err)
}

// Stats maps the table's counters onto the Engine vocabulary.
func (m *Mmap) Stats() Stats {
	c := m.Table.Stats()
	return Stats{
		Inserts:          c.TuplesInserted,
		Updates:          c.TuplesUpdated,
		Deletes:          c.TuplesDeleted,
		Lookups:          c.IndexLookups,
		Scans:            c.SeqScans,
		MaintenanceRuns:  c.VacuumRuns + c.VacuumFullRuns,
		EntriesReclaimed: c.TuplesReclaimed,
		BulkLoads:        m.bulkLoads.Load(),
	}
}

// Space maps the table's footprint onto the Engine vocabulary.
func (m *Mmap) Space() SpaceStats {
	sp := m.Table.Space()
	return SpaceStats{
		LiveEntries: sp.LiveTuples,
		DeadEntries: sp.DeadTuples,
		LiveBytes:   sp.LiveBytes,
		DeadBytes:   sp.DeadBytes,
		IndexBytes:  sp.IndexBytes,
		TotalBytes:  sp.TotalBytes + sp.IndexBytes,
	}
}

// VacuumLazy runs the lazy VACUUM and returns the tuples reclaimed.
func (m *Mmap) VacuumLazy() int { return m.Table.Vacuum().TuplesReclaimed }

// VacuumFullRewrite runs VACUUM FULL and returns the tuples reclaimed.
func (m *Mmap) VacuumFullRewrite() int { return m.Table.VacuumFull().TuplesReclaimed }
