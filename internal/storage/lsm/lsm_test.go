package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func k(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

func smallOpts() Options {
	return Options{MemtableFlushEntries: 64, CompactionFanIn: 4, GCGraceSeqs: 1}
}

func TestPutGet(t *testing.T) {
	s := New(smallOpts())
	const n = 1000
	for i := 0; i < n; i++ {
		s.Put(k(i), v(i))
	}
	for i := 0; i < n; i++ {
		got, ok := s.Get(k(i))
		if !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, ok)
		}
	}
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	if s.Stats().MemtableFlushes == 0 {
		t.Fatal("expected memtable flushes with small threshold")
	}
}

func TestOverwrite(t *testing.T) {
	s := New(smallOpts())
	s.Put(k(1), []byte("a"))
	s.Put(k(1), []byte("b"))
	got, _ := s.Get(k(1))
	if string(got) != "b" {
		t.Fatalf("Get = %q", got)
	}
	// Overwrite across a flush boundary.
	s.Flush()
	s.Put(k(1), []byte("c"))
	got, _ = s.Get(k(1))
	if string(got) != "c" {
		t.Fatalf("Get after flush = %q", got)
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := New(smallOpts())
	s.Put(k(1), []byte("SECRET"))
	s.Flush() // value now lives in an immutable run
	s.Delete(k(1))
	if _, ok := s.Get(k(1)); ok {
		t.Fatal("tombstoned key readable")
	}
	// The hazard: logically deleted, physically present.
	if !s.ForensicScan([]byte("SECRET")) {
		t.Fatal("deleted value should be physically resident before compaction")
	}
	sp := s.Space()
	if sp.ShadowedEntries == 0 {
		t.Fatal("expected shadowed entries")
	}
	// Full compaction with tiny GC grace purges it.
	s.Compact()
	if s.ForensicScan([]byte("SECRET")) {
		t.Fatal("full compaction left deleted value behind")
	}
	if _, ok := s.Get(k(1)); ok {
		t.Fatal("key resurrected by compaction")
	}
}

func TestTombstoneGCGrace(t *testing.T) {
	// With a huge GC grace, even full compaction keeps tombstones and
	// cannot drop them (modelling long illegal retention).
	s := New(Options{MemtableFlushEntries: 16, CompactionFanIn: 4, GCGraceSeqs: 1 << 40})
	s.Put(k(1), []byte("SECRET"))
	s.Flush()
	s.Delete(k(1))
	s.Compact()
	sp := s.Space()
	if sp.Tombstones != 1 {
		t.Fatalf("tombstone dropped despite GC grace: %+v", sp)
	}
	if _, ok := s.Get(k(1)); ok {
		t.Fatal("key readable")
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	s := New(smallOpts())
	s.Put(k(1), []byte("one"))
	s.Delete(k(1))
	s.Put(k(1), []byte("two"))
	got, ok := s.Get(k(1))
	if !ok || string(got) != "two" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestScanMergesAndHonoursTombstones(t *testing.T) {
	s := New(smallOpts())
	const n = 300
	for i := 0; i < n; i++ {
		s.Put(k(i), v(i))
	}
	for i := 0; i < n; i += 3 {
		s.Delete(k(i))
	}
	var keys []string
	s.Scan(func(key, value []byte) bool {
		keys = append(keys, string(key))
		return true
	})
	want := n - (n+2)/3
	if len(keys) != want {
		t.Fatalf("scan found %d keys, want %d", len(keys), want)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("scan out of order")
		}
	}
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New(smallOpts())
	for i := 0; i < 100; i++ {
		s.Put(k(i), v(i))
	}
	count := 0
	s.Scan(func(_, _ []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("visited %d", count)
	}
}

func TestCompactionReducesRuns(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 32, CompactionFanIn: 4, GCGraceSeqs: 1})
	for i := 0; i < 1000; i++ {
		s.Put(k(i%200), v(i))
	}
	sp := s.Space()
	if sp.Runs >= 8 {
		t.Fatalf("compaction not keeping up: %d runs", sp.Runs)
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	// All latest values visible.
	for i := 800; i < 1000; i++ {
		got, ok := s.Get(k(i % 200))
		_ = got
		if !ok {
			t.Fatalf("key %d lost after compaction", i%200)
		}
	}
}

func TestBloomFilterRejects(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 128, CompactionFanIn: 100, GCGraceSeqs: 1})
	for i := 0; i < 1000; i++ {
		s.Put(k(i), v(i))
	}
	s.Flush()
	// Probe keys inside the key range but absent (force bloom consults).
	for i := 0; i < 500; i++ {
		s.Get([]byte(fmt.Sprintf("key-%06d-x", i)))
	}
	// Within-range absent keys are rejected mostly by the bloom filter;
	// the counter is best-effort (only counted for in-range misses).
	if s.Stats().RunsProbed == 0 {
		t.Fatal("no runs probed")
	}
}

func TestForensicScanMemtable(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 1 << 20})
	s.Put(k(1), []byte("IN-MEMTABLE"))
	if !s.ForensicScan([]byte("IN-MEMTABLE")) {
		t.Fatal("memtable data not forensically visible")
	}
	if s.ForensicScan([]byte("ABSENT")) {
		t.Fatal("phantom pattern found")
	}
	if s.ForensicScan(nil) {
		t.Fatal("empty pattern found")
	}
}

func TestSpaceAccounting(t *testing.T) {
	s := New(smallOpts())
	for i := 0; i < 200; i++ {
		s.Put(k(i), v(i))
	}
	for i := 0; i < 50; i++ {
		s.Put(k(i), v(i+1000)) // shadow 50 old versions
	}
	sp := s.Space()
	if sp.LiveEntries != 200 {
		t.Fatalf("LiveEntries = %d, want 200", sp.LiveEntries)
	}
	if sp.TotalBytes <= 0 {
		t.Fatal("TotalBytes not tracked")
	}
}

// Property: the store agrees with a reference map under random workloads
// with interleaved flushes and compactions.
func TestRandomWorkloadAgainstReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(Options{MemtableFlushEntries: 32, CompactionFanIn: 3, GCGraceSeqs: 1})
		ref := make(map[string]string)
		for op := 0; op < 2000; op++ {
			key := fmt.Sprintf("key-%d", r.Intn(150))
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4:
				val := fmt.Sprintf("val-%d", op)
				s.Put([]byte(key), []byte(val))
				ref[key] = val
			case 5, 6:
				s.Delete([]byte(key))
				delete(ref, key)
			case 7, 8:
				got, ok := s.Get([]byte(key))
				want, inRef := ref[key]
				if ok != inRef || (ok && string(got) != want) {
					return false
				}
			case 9:
				if r.Intn(5) == 0 {
					s.Compact()
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		okAll := true
		s.Scan(func(key, value []byte) bool {
			want, inRef := ref[string(key)]
			if !inRef || want != string(value) {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a full compaction with expired GC grace, no shadowed
// entries remain and tombstones for keys with no older data are gone.
func TestCompactionPurgesShadowedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(Options{MemtableFlushEntries: 16, CompactionFanIn: 3, GCGraceSeqs: 1})
		for op := 0; op < 500; op++ {
			key := fmt.Sprintf("key-%d", r.Intn(60))
			if r.Intn(3) == 0 {
				s.Delete([]byte(key))
			} else {
				s.Put([]byte(key), v(op))
			}
		}
		// Age every workload tombstone past the GC grace (1 seq) before
		// the full compaction, so all of them are GC-eligible.
		s.Put([]byte("zzz-sentinel"), []byte("x"))
		s.Put([]byte("zzz-sentinel"), []byte("y"))
		s.Compact()
		sp := s.Space()
		return sp.ShadowedEntries == 0 && sp.Tombstones == 0 && sp.Runs <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	s := New(Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(k(i), v(i))
	}
}

func BenchmarkGetMultiRun(b *testing.B) {
	s := New(Options{MemtableFlushEntries: 1024, CompactionFanIn: 64})
	const n = 50000
	for i := 0; i < n; i++ {
		s.Put(k(i), v(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(k(i % n))
	}
}

func BenchmarkDeleteTombstone(b *testing.B) {
	s := New(Options{})
	for i := 0; i < 100000; i++ {
		s.Put(k(i), v(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Delete(k(i % 100000))
	}
}
