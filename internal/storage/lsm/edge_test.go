package lsm

import "testing"

func TestEmptyStoreOperations(t *testing.T) {
	s := New(Options{})
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("empty store returned a value")
	}
	s.Flush()   // flushing an empty memtable is a no-op
	s.Compact() // compacting an empty store is a no-op
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	n := 0
	s.Scan(func(_, _ []byte) bool { n++; return true })
	if n != 0 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestDeleteOfAbsentKeyIsATombstone(t *testing.T) {
	// Cassandra semantics: deleting a key that never existed still
	// writes a tombstone (the coordinator cannot know).
	s := New(Options{MemtableFlushEntries: 4})
	s.Delete([]byte("never-existed"))
	sp := s.Space()
	if sp.Tombstones != 1 {
		t.Fatalf("tombstones = %d", sp.Tombstones)
	}
	if _, ok := s.Get([]byte("never-existed")); ok {
		t.Fatal("phantom key readable")
	}
}

func TestScanAfterManyFlushes(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 8, CompactionFanIn: 1000})
	for i := 0; i < 200; i++ {
		s.Put(k(i), v(i))
	}
	if got := s.Space().Runs; got < 10 {
		t.Fatalf("expected many runs, got %d", got)
	}
	// The streaming merge must still deliver every key exactly once, in
	// order.
	var prev []byte
	n := 0
	s.Scan(func(key, _ []byte) bool {
		if prev != nil && string(prev) >= string(key) {
			t.Fatalf("order violated: %q then %q", prev, key)
		}
		prev = append(prev[:0], key...)
		n++
		return true
	})
	if n != 200 {
		t.Fatalf("scan visited %d keys", n)
	}
}

func TestCompactIdempotent(t *testing.T) {
	s := New(smallOpts())
	for i := 0; i < 100; i++ {
		s.Put(k(i), v(i))
	}
	s.Compact()
	before := s.Space()
	s.Compact()
	after := s.Space()
	if before.LiveEntries != after.LiveEntries || after.Runs > 1 {
		t.Fatalf("second compact changed state: %+v -> %+v", before, after)
	}
}
