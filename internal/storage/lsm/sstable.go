package lsm

import (
	"bytes"
	"sort"
)

// sstable is an immutable sorted run. Entries are version-latest within
// the run; older versions of a key live in older runs until compaction
// merges them away — which is precisely how logically deleted data stays
// physically resident (the paper's tombstone-retention hazard, after
// Lethe [62]).
type sstable struct {
	entries []entry
	filter  *bloom
	minKey  []byte
	maxKey  []byte
	// maxSeq is the newest sequence number in the run; compaction uses
	// it to decide tombstone GC eligibility.
	maxSeq uint64
	bytes  int64
}

// buildSSTable constructs a run from key-ordered entries.
func buildSSTable(entries []entry) *sstable {
	t := &sstable{entries: entries, filter: newBloom(len(entries))}
	for i := range entries {
		e := &entries[i]
		t.filter.add(e.key)
		if e.seq > t.maxSeq {
			t.maxSeq = e.seq
		}
		t.bytes += int64(len(e.key) + len(e.value) + 16)
	}
	if len(entries) > 0 {
		t.minKey = entries[0].key
		t.maxKey = entries[len(entries)-1].key
	}
	return t
}

// get returns the entry for key within this run.
func (t *sstable) get(key []byte) (entry, bool) {
	if len(t.entries) == 0 ||
		bytes.Compare(key, t.minKey) < 0 || bytes.Compare(key, t.maxKey) > 0 {
		return entry{}, false
	}
	if !t.filter.mayContain(key) {
		return entry{}, false
	}
	i := sort.Search(len(t.entries), func(i int) bool {
		return bytes.Compare(t.entries[i].key, key) >= 0
	})
	if i < len(t.entries) && bytes.Equal(t.entries[i].key, key) {
		return t.entries[i], true
	}
	return entry{}, false
}

// len returns the number of entries (including tombstones).
func (t *sstable) len() int { return len(t.entries) }

// mergeRuns merges runs (newest first) into a single key-ordered entry
// slice keeping only the newest version of each key. Tombstones are
// retained unless dropTombstonesBelow > 0 and the tombstone's seq is
// older than it (GC-grace expired and nothing below can resurrect).
// purge, when non-nil, maps keys under a compliance purge obligation to
// their registration sequence: every version of such a key — value or
// tombstone — at or below that sequence is dropped regardless of grace
// (the erase-aware override of GCGraceSeqs).
func mergeRuns(runs []*sstable, dropTombstonesBelow uint64, purge map[string]uint64) []entry {
	// k-way merge by key; on ties the entry from the newest run wins.
	type cursor struct {
		run *sstable
		idx int
		age int // 0 = newest
	}
	var cursors []cursor
	for age, r := range runs {
		if r.len() > 0 {
			cursors = append(cursors, cursor{run: r, age: age})
		}
	}
	var out []entry
	for len(cursors) > 0 {
		// Find the smallest current key; among equals the smallest age wins.
		best := -1
		for i := range cursors {
			if best == -1 {
				best = i
				continue
			}
			c := bytes.Compare(cursors[i].run.entries[cursors[i].idx].key,
				cursors[best].run.entries[cursors[best].idx].key)
			if c < 0 || (c == 0 && cursors[i].age < cursors[best].age) {
				best = i
			}
		}
		winner := cursors[best].run.entries[cursors[best].idx]
		// Advance every cursor positioned at this key (dropping older
		// versions).
		for i := 0; i < len(cursors); {
			cur := &cursors[i]
			if bytes.Equal(cur.run.entries[cur.idx].key, winner.key) {
				cur.idx++
				if cur.idx >= cur.run.len() {
					cursors = append(cursors[:i], cursors[i+1:]...)
					continue
				}
			}
			i++
		}
		if winner.tombstone && dropTombstonesBelow > 0 && winner.seq < dropTombstonesBelow {
			continue // tombstone GC: drop it and the data it shadowed
		}
		if reg, ok := purge[string(winner.key)]; ok && winner.seq <= reg {
			continue // purge obligation: drop every covered version
		}
		out = append(out, winner)
	}
	return out
}
