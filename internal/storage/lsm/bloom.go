package lsm

import "hash/fnv"

// bloom is a fixed-size Bloom filter sized for roughly 10 bits per key,
// giving ~1% false positives with 3 hash functions — enough to keep Get
// from probing runs that cannot contain the key.
type bloom struct {
	bits []uint64
	k    int
}

func newBloom(expectedKeys int) *bloom {
	bits := expectedKeys * 10
	if bits < 64 {
		bits = 64
	}
	return &bloom{bits: make([]uint64, (bits+63)/64), k: 3}
}

func (b *bloom) hashes(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// Kirsch-Mitzenmacher double hashing: derive h2 from h1.
	h2 := h1>>33 | h1<<31
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

func (b *bloom) add(key []byte) {
	h1, h2 := b.hashes(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := b.hashes(key)
	n := uint64(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// sizeBytes returns the filter's memory footprint.
func (b *bloom) sizeBytes() int64 { return int64(len(b.bits) * 8) }
