// Package lsm implements a log-structured merge-tree store with
// Cassandra-style tombstone deletes: a delete is an O(1) write of a
// tombstone marker, and the deleted data stays physically resident in
// older runs until compaction merges past it. This is the efficient but
// legally hazardous erasure grounding the paper contrasts with
// PostgreSQL's DELETE/VACUUM family (§1, §3.1; the "Tombstones
// (Indexing)" series of Figure 4(a)).
package lsm

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// NoGrace configures a GC grace of zero sequence numbers: every
// tombstone is eligible for garbage collection at the next full
// compaction. The zero value of Options.GCGraceSeqs selects the default
// grace, so an immediate-purge grace needs this explicit sentinel.
const NoGrace int64 = -1

// Options tune the store. Zero values select sensible defaults.
type Options struct {
	// MemtableFlushEntries flushes the memtable to a run once it holds
	// this many entries (default 4096).
	MemtableFlushEntries int
	// CompactionFanIn triggers a size-tiered compaction once this many
	// runs accumulate (default 4).
	CompactionFanIn int
	// GCGraceSeqs is how many sequence numbers a tombstone must age
	// before a full compaction may drop it (Cassandra's gc_grace_seconds
	// in logical time; default 100000). Large values model the paper's
	// "data illegally physically retained for a long duration"; NoGrace
	// selects a grace of zero (the zero value means "default", so zero
	// grace cannot be spelled as 0).
	GCGraceSeqs int64
	// PurgeWithinOps bounds how many store operations (puts, deletes,
	// gets) a registered purge obligation may stay undischarged before
	// the store forces a purge compaction (default 128). Purge
	// obligations override GCGraceSeqs for the keys they cover.
	PurgeWithinOps int
}

func (o Options) withDefaults() Options {
	if o.MemtableFlushEntries <= 0 {
		o.MemtableFlushEntries = 4096
	}
	if o.CompactionFanIn <= 0 {
		o.CompactionFanIn = 4
	}
	if o.GCGraceSeqs == 0 {
		o.GCGraceSeqs = 100000
	}
	if o.PurgeWithinOps <= 0 {
		o.PurgeWithinOps = 128
	}
	return o
}

// grace returns the effective GC grace in sequence numbers.
func (o Options) grace() uint64 {
	if o.GCGraceSeqs < 0 {
		return 0
	}
	return uint64(o.GCGraceSeqs)
}

// Counters expose the physical work performed, for tests and benches.
type Counters struct {
	Puts            uint64
	Deletes         uint64
	Gets            uint64
	RunsProbed      uint64
	BloomRejects    uint64
	MemtableFlushes uint64
	Compactions     uint64
	EntriesMerged   uint64
	TombstonesGCed  uint64
	// PurgesRegistered / PurgesDischarged count compliance purge
	// obligations entering and leaving the store; PurgeCompactions
	// counts the forced compactions that discharged them.
	PurgesRegistered uint64
	PurgesDischarged uint64
	PurgeCompactions uint64
}

// Store is the LSM store. It is safe for concurrent use; keyed reads
// (Get, Has, Live) and scans take the read lock and run concurrently
// with each other, so concurrent readers never serialize — only
// mutations and compactions take the write lock.
type Store struct {
	opts Options

	mu    sync.RWMutex
	mem   *memtable
	runs  []*sstable // newest first
	seq   uint64
	stats Counters

	// Read-path counters are atomics so shared-lock readers can bump
	// them without write access; Stats() merges them into the snapshot.
	gets         atomic.Uint64
	runsProbed   atomic.Uint64
	bloomRejects atomic.Uint64

	// purges maps keys under a compliance purge obligation to the
	// sequence number at registration: every physical version of the key
	// at or below that sequence must be gone within PurgeWithinOps
	// operations, GCGraceSeqs notwithstanding. opsSincePurge counts
	// operations since the last purge check while obligations pend; it
	// is atomic because shared-lock reads tick it too (the purge window
	// is bounded in *operations*, reads included).
	purges        map[string]uint64
	opsSincePurge atomic.Int64
}

// New returns an empty store.
func New(opts Options) *Store {
	o := opts.withDefaults()
	return &Store{opts: o, mem: newMemtable(1)}
}

// Put inserts or overwrites key.
func (s *Store) Put(key, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.mem.put(entry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		seq:   s.seq,
	})
	s.stats.Puts++
	s.maybeFlushLocked()
	s.tickPurgeLocked()
}

// Delete writes a tombstone for key. The tombstone shadows older
// versions; their bytes stay in older runs until compaction.
func (s *Store) Delete(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.mem.put(entry{
		key:       append([]byte(nil), key...),
		seq:       s.seq,
		tombstone: true,
	})
	s.stats.Deletes++
	s.maybeFlushLocked()
	s.tickPurgeLocked()
}

// Get returns the value for key, honouring tombstones.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.gets.Add(1)
	s.mu.RLock()
	val, ok := s.getRLocked(key)
	purgesPending := len(s.purges) > 0
	s.mu.RUnlock()
	// Reads advance the bounded purge window too (it is measured in
	// store operations). The tick is atomic so concurrent readers never
	// serialize on it; the reader that crosses the threshold upgrades to
	// the write lock and runs the purge compaction.
	if purgesPending && s.opsSincePurge.Add(1) >= int64(s.opts.PurgeWithinOps) {
		s.mu.Lock()
		if len(s.purges) > 0 && s.opsSincePurge.Load() >= int64(s.opts.PurgeWithinOps) {
			s.purgeLocked()
		}
		s.mu.Unlock()
	}
	return val, ok
}

// getRLocked resolves key to its live value. Caller holds mu (either
// mode); the probe mutates nothing but the atomic read counters.
func (s *Store) getRLocked(key []byte) ([]byte, bool) {
	if e, ok := s.mem.get(key); ok {
		if e.tombstone {
			return nil, false
		}
		return append([]byte(nil), e.value...), true
	}
	for _, r := range s.runs {
		s.runsProbed.Add(1)
		e, ok := r.get(key)
		if !ok {
			if r.len() > 0 && bytes.Compare(key, r.minKey) >= 0 &&
				bytes.Compare(key, r.maxKey) <= 0 && !r.filter.mayContain(key) {
				s.bloomRejects.Add(1)
			}
			continue
		}
		if e.tombstone {
			return nil, false
		}
		return append([]byte(nil), e.value...), true
	}
	return nil, false
}

// Has reports whether key has a live value.
func (s *Store) Has(key []byte) bool {
	_, ok := s.Get(key)
	return ok
}

// Scan visits live key-value pairs in key order until fn returns false.
// It streams a k-way merge over the memtable and all runs, honouring
// tombstones; early termination stops the merge (no materialization).
// The read lock is held for the whole merge — the memtable cursor
// walks live skip-list nodes that concurrent puts splice and overwrite
// in place — so fn must not call back into the store's mutating
// methods. (The heap's SeqScan holds its lock scan-long too.)
func (s *Store) Scan(fn func(key, value []byte) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cursors := make([]*scanCursor, 0, len(s.runs)+1)
	cursors = append(cursors, &scanCursor{mem: s.mem.head.next[0], age: 0})
	for i, r := range s.runs {
		if r.len() > 0 {
			cursors = append(cursors, &scanCursor{run: r, age: i + 1})
		}
	}

	// Drop exhausted cursors up front.
	live := cursors[:0]
	for _, c := range cursors {
		if !c.done() {
			live = append(live, c)
		}
	}
	cursors = live

	for len(cursors) > 0 {
		// Smallest current key wins; among equals the newest (lowest
		// age) version is authoritative.
		best := 0
		for i := 1; i < len(cursors); i++ {
			c := bytes.Compare(cursors[i].key(), cursors[best].key())
			if c < 0 || (c == 0 && cursors[i].age < cursors[best].age) {
				best = i
			}
		}
		winner := cursors[best].entry()
		// Advance every cursor positioned at the winning key.
		key := winner.key
		for i := 0; i < len(cursors); {
			if bytes.Equal(cursors[i].key(), key) {
				cursors[i].advance()
				if cursors[i].done() {
					cursors = append(cursors[:i], cursors[i+1:]...)
					continue
				}
			}
			i++
		}
		if winner.tombstone {
			continue
		}
		if !fn(winner.key, winner.value) {
			return
		}
	}
}

// scanCursor walks either the memtable's bottom level or one run.
type scanCursor struct {
	mem *skipNode
	run *sstable
	idx int
	age int
}

func (c *scanCursor) done() bool {
	if c.run != nil {
		return c.idx >= c.run.len()
	}
	return c.mem == nil
}

func (c *scanCursor) key() []byte {
	if c.run != nil {
		return c.run.entries[c.idx].key
	}
	return c.mem.key
}

func (c *scanCursor) entry() entry {
	if c.run != nil {
		return c.run.entries[c.idx]
	}
	return c.mem.entry
}

func (c *scanCursor) advance() {
	if c.run != nil {
		c.idx++
		return
	}
	c.mem = c.mem.next[0]
}

// Len returns the number of live keys (cost: a full merge; intended for
// tests and space accounting, not hot paths).
func (s *Store) Len() int {
	n := 0
	s.Scan(func(_, _ []byte) bool {
		n++
		return true
	})
	return n
}

// maybeFlushLocked flushes the memtable when it is full and compacts
// when enough runs have piled up. Caller holds mu.
func (s *Store) maybeFlushLocked() {
	if s.mem.count < s.opts.MemtableFlushEntries {
		return
	}
	s.flushLocked()
	if len(s.runs) >= s.opts.CompactionFanIn {
		s.compactLocked(false)
	}
}

// flushLocked turns the memtable into the newest run. Caller holds mu.
func (s *Store) flushLocked() {
	if s.mem.count == 0 {
		return
	}
	run := buildSSTable(s.mem.drain())
	s.runs = append([]*sstable{run}, s.runs...)
	s.mem = newMemtable(int64(s.seq))
	s.stats.MemtableFlushes++
}

// Flush forces the memtable into a run (for tests and shutdown).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// Compact merges all runs into one. A full compaction may garbage-collect
// tombstones older than the GC grace; minor (automatic) compactions keep
// them, as Cassandra does.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.compactLocked(true)
}

func (s *Store) compactLocked(full bool) {
	if len(s.runs) <= 1 && !full {
		return
	}
	var dropBelow uint64
	if full {
		if grace := s.opts.grace(); grace == 0 {
			// Zero grace (NoGrace): every tombstone is past its grace.
			dropBelow = s.seq + 1
		} else if s.seq > grace {
			dropBelow = s.seq - grace
		}
	}
	before := 0
	for _, r := range s.runs {
		before += r.len()
	}
	merged := mergeRuns(s.runs, dropBelow, s.purges)
	s.stats.Compactions++
	s.stats.EntriesMerged += uint64(before)
	if full {
		tombs := 0
		for _, e := range merged {
			if e.tombstone {
				tombs++
			}
		}
		// Count GC'd tombstones: tombstones that went in minus those left.
		inTombs := 0
		for _, r := range s.runs {
			for _, e := range r.entries {
				if e.tombstone {
					inTombs++
				}
			}
		}
		if inTombs > tombs {
			s.stats.TombstonesGCed += uint64(inTombs - tombs)
		}
	}
	if len(merged) == 0 {
		s.runs = nil
	} else {
		s.runs = []*sstable{buildSSTable(merged)}
	}
	if len(s.purges) > 0 {
		s.dischargeLocked()
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	// The read-path counters live outside the mutation-guarded block so
	// shared-lock readers can bump them concurrently.
	st.Gets = s.gets.Load()
	st.RunsProbed = s.runsProbed.Load()
	st.BloomRejects = s.bloomRejects.Load()
	return st
}

// SpaceStats describe the store's physical footprint.
type SpaceStats struct {
	Runs            int
	MemtableEntries int
	LiveEntries     int
	Tombstones      int
	// ShadowedEntries are physically present entries hidden by newer
	// versions or tombstones — the data that should be gone but is not.
	ShadowedEntries int
	// LiveBytes / DeadBytes split the entry bytes between authoritative
	// live values and everything else (tombstones, shadowed versions).
	LiveBytes   int64
	DeadBytes   int64
	TotalBytes  int64
	FilterBytes int64
}

// Space returns the physical footprint.
func (s *Store) Space() SpaceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sp SpaceStats
	sp.Runs = len(s.runs)
	sp.MemtableEntries = s.mem.count
	sp.TotalBytes = s.mem.bytes

	seen := make(map[string]bool)
	account := func(e entry) {
		size := int64(len(e.key) + len(e.value) + 16)
		if seen[string(e.key)] {
			sp.ShadowedEntries++
			sp.DeadBytes += size
			return
		}
		seen[string(e.key)] = true
		if e.tombstone {
			sp.Tombstones++
			sp.DeadBytes += size
		} else {
			sp.LiveEntries++
			sp.LiveBytes += size
		}
	}
	s.mem.ascend(func(e entry) bool {
		account(e)
		return true
	})
	for _, r := range s.runs {
		sp.TotalBytes += r.bytes
		sp.FilterBytes += r.filter.sizeBytes()
		for _, e := range r.entries {
			account(e)
		}
	}
	return sp
}

// RegisterPurge records a compliance purge obligation for key: every
// physical version of the key at or below the current sequence number —
// live values, shadowed versions and the tombstone itself — must be
// physically gone within Options.PurgeWithinOps operations, overriding
// GCGraceSeqs. This is the erase-aware half of the tombstone grounding:
// a strong delete registers the obligation, and the store forces a
// targeted compaction before the bound expires. Versions written after
// registration (a lawful re-collection under the same key) are not
// covered. The obligation is discharged only when a physical scan of
// memtable and runs comes back clean. A key that still has a live value
// is tombstoned first — a purge is a strong delete, and registration
// must not leave read visibility dependent on compaction timing.
func (s *Store) RegisterPurge(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.liveLocked(key) {
		s.seq++
		s.mem.put(entry{key: append([]byte(nil), key...), seq: s.seq, tombstone: true})
		s.stats.Deletes++
	}
	if s.purges == nil {
		s.purges = make(map[string]uint64)
	}
	s.purges[string(key)] = s.seq
	s.stats.PurgesRegistered++
}

// Live reports whether key currently resolves to a live value without
// copying it, counting the probe, or ticking the purge window — the
// cheap existence check the engine adapter's mutations use.
func (s *Store) Live(key []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveLocked(key)
}

// liveLocked reports whether key currently resolves to a live value
// (the Get path without counter accounting). Caller holds mu.
func (s *Store) liveLocked(key []byte) bool {
	if e, ok := s.mem.get(key); ok {
		return !e.tombstone
	}
	for _, r := range s.runs {
		if e, ok := r.get(key); ok {
			return !e.tombstone
		}
	}
	return false
}

// PendingPurges reports how many purge obligations are undischarged.
func (s *Store) PendingPurges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.purges)
}

// ForcePurge runs the purge compaction immediately and returns how many
// obligations it discharged.
func (s *Store) ForcePurge() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.stats.PurgesDischarged
	s.purgeLocked()
	return int(s.stats.PurgesDischarged - before)
}

// tickPurgeLocked advances the bounded purge window: once obligations
// have pended for PurgeWithinOps operations, the purge compaction runs.
// Caller holds mu.
func (s *Store) tickPurgeLocked() {
	if len(s.purges) == 0 {
		return
	}
	if s.opsSincePurge.Add(1) >= int64(s.opts.PurgeWithinOps) {
		s.purgeLocked()
	}
}

// purgeLocked flushes the memtable and merges all runs with the purge
// predicate applied, then discharges every obligation whose key
// verifies physically clean. Caller holds mu.
func (s *Store) purgeLocked() {
	if len(s.purges) == 0 {
		return
	}
	s.flushLocked()
	s.compactLocked(true)
	s.stats.PurgeCompactions++
	s.opsSincePurge.Store(0)
}

// dischargeLocked removes every obligation whose key no longer has a
// covered physical version — discharge is by evidence, so it runs
// after any compaction: a minor compaction applies the purge predicate
// too and may leave the store clean before the forced purge fires.
// Caller holds mu.
func (s *Store) dischargeLocked() {
	for k, reg := range s.purges {
		if s.physicallyPresentLocked([]byte(k), reg) {
			continue // not clean: the obligation stays pending
		}
		delete(s.purges, k)
		s.stats.PurgesDischarged++
	}
	if len(s.purges) == 0 {
		s.opsSincePurge.Store(0)
	}
}

// physicallyPresentLocked reports whether any physical version of key
// with sequence <= upto remains in the memtable or any run (the
// discharge check of a purge obligation). Caller holds mu.
func (s *Store) physicallyPresentLocked(key []byte, upto uint64) bool {
	if e, ok := s.mem.get(key); ok && e.seq <= upto {
		return true
	}
	for _, r := range s.runs {
		if e, ok := r.get(key); ok && e.seq <= upto {
			return true
		}
	}
	return false
}

// SanitizePass implements the cryptox.Sanitizable hook for the LSM
// grounding of physical sanitization: the non-live bytes of an LSM tree
// are its tombstones and shadowed versions, and a sanitize pass removes
// them all — a full compaction with zero grace, regardless of
// GCGraceSeqs. The pattern is ignored (entries are dropped, not
// overwritten); the return value is the physical bytes reclaimed.
func (s *Store) SanitizePass(_ byte) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.physicalBytesLocked()
	s.flushLocked()
	if len(s.runs) > 0 {
		saved := s.opts.GCGraceSeqs
		s.opts.GCGraceSeqs = NoGrace
		s.compactLocked(true)
		s.opts.GCGraceSeqs = saved
	}
	reclaimed := before - s.physicalBytesLocked()
	if reclaimed < 0 {
		return 0
	}
	return reclaimed
}

// VerifySanitized reports whether no non-live bytes remain: no
// tombstones and no shadowed versions anywhere in the store.
func (s *Store) VerifySanitized(_ byte) bool {
	sp := s.Space()
	return sp.Tombstones == 0 && sp.ShadowedEntries == 0
}

// physicalBytesLocked sums the memtable and run footprints. Caller
// holds mu.
func (s *Store) physicalBytesLocked() int64 {
	n := s.mem.bytes
	for _, r := range s.runs {
		n += r.bytes
	}
	return n
}

// ForensicScan reports whether the byte pattern is physically present
// anywhere — including entries shadowed by tombstones. This is how the
// paper's illegal-retention hazard is made observable.
func (s *Store) ForensicScan(pattern []byte) bool {
	if len(pattern) == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	found := false
	s.mem.ascend(func(e entry) bool {
		if bytes.Contains(e.value, pattern) || bytes.Contains(e.key, pattern) {
			found = true
			return false
		}
		return true
	})
	if found {
		return true
	}
	for _, r := range s.runs {
		for _, e := range r.entries {
			if bytes.Contains(e.value, pattern) || bytes.Contains(e.key, pattern) {
				return true
			}
		}
	}
	return false
}
