// Package lsm implements a log-structured merge-tree store with
// Cassandra-style tombstone deletes: a delete is an O(1) write of a
// tombstone marker, and the deleted data stays physically resident in
// older runs until compaction merges past it. This is the efficient but
// legally hazardous erasure grounding the paper contrasts with
// PostgreSQL's DELETE/VACUUM family (§1, §3.1; the "Tombstones
// (Indexing)" series of Figure 4(a)).
package lsm

import (
	"bytes"
	"sync"
)

// Options tune the store. Zero values select sensible defaults.
type Options struct {
	// MemtableFlushEntries flushes the memtable to a run once it holds
	// this many entries (default 4096).
	MemtableFlushEntries int
	// CompactionFanIn triggers a size-tiered compaction once this many
	// runs accumulate (default 4).
	CompactionFanIn int
	// GCGraceSeqs is how many sequence numbers a tombstone must age
	// before a full compaction may drop it (Cassandra's gc_grace_seconds
	// in logical time; default 100000). Large values model the paper's
	// "data illegally physically retained for a long duration".
	GCGraceSeqs uint64
}

func (o Options) withDefaults() Options {
	if o.MemtableFlushEntries <= 0 {
		o.MemtableFlushEntries = 4096
	}
	if o.CompactionFanIn <= 0 {
		o.CompactionFanIn = 4
	}
	if o.GCGraceSeqs == 0 {
		o.GCGraceSeqs = 100000
	}
	return o
}

// Counters expose the physical work performed, for tests and benches.
type Counters struct {
	Puts            uint64
	Deletes         uint64
	Gets            uint64
	RunsProbed      uint64
	BloomRejects    uint64
	MemtableFlushes uint64
	Compactions     uint64
	EntriesMerged   uint64
	TombstonesGCed  uint64
}

// Store is the LSM store. It is safe for concurrent use.
type Store struct {
	opts Options

	mu    sync.RWMutex
	mem   *memtable
	runs  []*sstable // newest first
	seq   uint64
	stats Counters
}

// New returns an empty store.
func New(opts Options) *Store {
	o := opts.withDefaults()
	return &Store{opts: o, mem: newMemtable(1)}
}

// Put inserts or overwrites key.
func (s *Store) Put(key, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.mem.put(entry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		seq:   s.seq,
	})
	s.stats.Puts++
	s.maybeFlushLocked()
}

// Delete writes a tombstone for key. The tombstone shadows older
// versions; their bytes stay in older runs until compaction.
func (s *Store) Delete(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.mem.put(entry{
		key:       append([]byte(nil), key...),
		seq:       s.seq,
		tombstone: true,
	})
	s.stats.Deletes++
	s.maybeFlushLocked()
}

// Get returns the value for key, honouring tombstones.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	if e, ok := s.mem.get(key); ok {
		if e.tombstone {
			return nil, false
		}
		return append([]byte(nil), e.value...), true
	}
	for _, r := range s.runs {
		s.stats.RunsProbed++
		e, ok := r.get(key)
		if !ok {
			if r.len() > 0 && bytes.Compare(key, r.minKey) >= 0 &&
				bytes.Compare(key, r.maxKey) <= 0 && !r.filter.mayContain(key) {
				s.stats.BloomRejects++
			}
			continue
		}
		if e.tombstone {
			return nil, false
		}
		return append([]byte(nil), e.value...), true
	}
	return nil, false
}

// Has reports whether key has a live value.
func (s *Store) Has(key []byte) bool {
	_, ok := s.Get(key)
	return ok
}

// Scan visits live key-value pairs in key order until fn returns false.
// It streams a k-way merge over the memtable and all runs, honouring
// tombstones; early termination stops the merge (no materialization).
func (s *Store) Scan(fn func(key, value []byte) bool) {
	s.mu.RLock()
	cursors := make([]*scanCursor, 0, len(s.runs)+1)
	cursors = append(cursors, &scanCursor{mem: s.mem.head.next[0], age: 0})
	for i, r := range s.runs {
		if r.len() > 0 {
			cursors = append(cursors, &scanCursor{run: r, age: i + 1})
		}
	}
	s.mu.RUnlock()

	// Drop exhausted cursors up front.
	live := cursors[:0]
	for _, c := range cursors {
		if !c.done() {
			live = append(live, c)
		}
	}
	cursors = live

	for len(cursors) > 0 {
		// Smallest current key wins; among equals the newest (lowest
		// age) version is authoritative.
		best := 0
		for i := 1; i < len(cursors); i++ {
			c := bytes.Compare(cursors[i].key(), cursors[best].key())
			if c < 0 || (c == 0 && cursors[i].age < cursors[best].age) {
				best = i
			}
		}
		winner := cursors[best].entry()
		// Advance every cursor positioned at the winning key.
		key := winner.key
		for i := 0; i < len(cursors); {
			if bytes.Equal(cursors[i].key(), key) {
				cursors[i].advance()
				if cursors[i].done() {
					cursors = append(cursors[:i], cursors[i+1:]...)
					continue
				}
			}
			i++
		}
		if winner.tombstone {
			continue
		}
		if !fn(winner.key, winner.value) {
			return
		}
	}
}

// scanCursor walks either the memtable's bottom level or one run.
type scanCursor struct {
	mem *skipNode
	run *sstable
	idx int
	age int
}

func (c *scanCursor) done() bool {
	if c.run != nil {
		return c.idx >= c.run.len()
	}
	return c.mem == nil
}

func (c *scanCursor) key() []byte {
	if c.run != nil {
		return c.run.entries[c.idx].key
	}
	return c.mem.key
}

func (c *scanCursor) entry() entry {
	if c.run != nil {
		return c.run.entries[c.idx]
	}
	return c.mem.entry
}

func (c *scanCursor) advance() {
	if c.run != nil {
		c.idx++
		return
	}
	c.mem = c.mem.next[0]
}

// Len returns the number of live keys (cost: a full merge; intended for
// tests and space accounting, not hot paths).
func (s *Store) Len() int {
	n := 0
	s.Scan(func(_, _ []byte) bool {
		n++
		return true
	})
	return n
}

// maybeFlushLocked flushes the memtable when it is full and compacts
// when enough runs have piled up. Caller holds mu.
func (s *Store) maybeFlushLocked() {
	if s.mem.count < s.opts.MemtableFlushEntries {
		return
	}
	s.flushLocked()
	if len(s.runs) >= s.opts.CompactionFanIn {
		s.compactLocked(false)
	}
}

// flushLocked turns the memtable into the newest run. Caller holds mu.
func (s *Store) flushLocked() {
	if s.mem.count == 0 {
		return
	}
	run := buildSSTable(s.mem.drain())
	s.runs = append([]*sstable{run}, s.runs...)
	s.mem = newMemtable(int64(s.seq))
	s.stats.MemtableFlushes++
}

// Flush forces the memtable into a run (for tests and shutdown).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// Compact merges all runs into one. A full compaction may garbage-collect
// tombstones older than the GC grace; minor (automatic) compactions keep
// them, as Cassandra does.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.compactLocked(true)
}

func (s *Store) compactLocked(full bool) {
	if len(s.runs) <= 1 && !full {
		return
	}
	var dropBelow uint64
	if full && s.seq > s.opts.GCGraceSeqs {
		dropBelow = s.seq - s.opts.GCGraceSeqs
	}
	before := 0
	for _, r := range s.runs {
		before += r.len()
	}
	merged := mergeRuns(s.runs, dropBelow)
	s.stats.Compactions++
	s.stats.EntriesMerged += uint64(before)
	if full {
		tombs := 0
		for _, e := range merged {
			if e.tombstone {
				tombs++
			}
		}
		// Count GC'd tombstones: tombstones that went in minus those left.
		inTombs := 0
		for _, r := range s.runs {
			for _, e := range r.entries {
				if e.tombstone {
					inTombs++
				}
			}
		}
		if inTombs > tombs {
			s.stats.TombstonesGCed += uint64(inTombs - tombs)
		}
	}
	if len(merged) == 0 {
		s.runs = nil
		return
	}
	s.runs = []*sstable{buildSSTable(merged)}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// SpaceStats describe the store's physical footprint.
type SpaceStats struct {
	Runs            int
	MemtableEntries int
	LiveEntries     int
	Tombstones      int
	// ShadowedEntries are physically present entries hidden by newer
	// versions or tombstones — the data that should be gone but is not.
	ShadowedEntries int
	TotalBytes      int64
	FilterBytes     int64
}

// Space returns the physical footprint.
func (s *Store) Space() SpaceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sp SpaceStats
	sp.Runs = len(s.runs)
	sp.MemtableEntries = s.mem.count
	sp.TotalBytes = s.mem.bytes

	seen := make(map[string]bool)
	account := func(e entry) {
		if seen[string(e.key)] {
			sp.ShadowedEntries++
			return
		}
		seen[string(e.key)] = true
		if e.tombstone {
			sp.Tombstones++
		} else {
			sp.LiveEntries++
		}
	}
	s.mem.ascend(func(e entry) bool {
		account(e)
		return true
	})
	for _, r := range s.runs {
		sp.TotalBytes += r.bytes
		sp.FilterBytes += r.filter.sizeBytes()
		for _, e := range r.entries {
			account(e)
		}
	}
	return sp
}

// ForensicScan reports whether the byte pattern is physically present
// anywhere — including entries shadowed by tombstones. This is how the
// paper's illegal-retention hazard is made observable.
func (s *Store) ForensicScan(pattern []byte) bool {
	if len(pattern) == 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	found := false
	s.mem.ascend(func(e entry) bool {
		if bytes.Contains(e.value, pattern) || bytes.Contains(e.key, pattern) {
			found = true
			return false
		}
		return true
	})
	if found {
		return true
	}
	for _, r := range s.runs {
		for _, e := range r.entries {
			if bytes.Contains(e.value, pattern) || bytes.Contains(e.key, pattern) {
				return true
			}
		}
	}
	return false
}
