package lsm

import (
	"bytes"
	"math/rand"
)

// entry is one versioned key-value record. A tombstone entry marks the
// key deleted as of seq; the deleted value is gone from the memtable but
// older values survive in runs below until compaction.
type entry struct {
	key       []byte
	value     []byte
	seq       uint64
	tombstone bool
}

const maxSkipLevel = 16

// memtable is a skiplist-ordered write buffer, as in Cassandra/LevelDB.
// Access is serialized by the Store's mutex.
type memtable struct {
	head  *skipNode
	level int
	rng   *rand.Rand
	count int
	bytes int64
}

type skipNode struct {
	entry
	next [maxSkipLevel]*skipNode
}

func newMemtable(seed int64) *memtable {
	return &memtable{
		head:  &skipNode{},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (m *memtable) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites the entry for key.
func (m *memtable) put(e entry) {
	var update [maxSkipLevel]*skipNode
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, e.key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, e.key) {
		// Overwrite in place; adjust byte accounting.
		m.bytes += int64(len(e.value)) - int64(len(x.value))
		x.value = e.value
		x.seq = e.seq
		x.tombstone = e.tombstone
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	n := &skipNode{entry: e}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.count++
	m.bytes += int64(len(e.key) + len(e.value) + 16)
}

// get returns the entry for key, if buffered.
func (m *memtable) get(key []byte) (entry, bool) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, key) {
		return x.entry, true
	}
	return entry{}, false
}

// ascend visits entries in key order until fn returns false.
func (m *memtable) ascend(fn func(entry) bool) {
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		if !fn(x.entry) {
			return
		}
	}
}

// drain returns all entries in key order.
func (m *memtable) drain() []entry {
	out := make([]entry, 0, m.count)
	m.ascend(func(e entry) bool {
		out = append(out, e)
		return true
	})
	return out
}
