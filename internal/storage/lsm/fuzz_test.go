package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// FuzzLSM drives random Put/Delete/Flush/Compact/RegisterPurge
// interleavings against a map reference and checks that the store never
// panics, Get and Scan agree with the reference, and a deleted key
// never resurrects — including past a zero grace, where full
// compactions GC its tombstone.
func FuzzLSM(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x41, 0x02, 0x03})
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70})
	f.Add(bytes.Repeat([]byte{0x05, 0x81, 0x42}, 40))
	f.Fuzz(func(t *testing.T, script []byte) {
		s := New(Options{
			MemtableFlushEntries: 4,
			CompactionFanIn:      3,
			GCGraceSeqs:          NoGrace, // harshest GC: nothing may resurrect
			PurgeWithinOps:       6,
		})
		model := make(map[string]string)
		keyOf := func(b byte) []byte { return []byte(fmt.Sprintf("key-%02d", b%16)) }
		for i := 0; i < len(script); i++ {
			op := script[i] % 5
			var arg byte
			if i+1 < len(script) {
				i++
				arg = script[i]
			}
			k := keyOf(arg)
			switch op {
			case 0:
				v := fmt.Sprintf("val-%d-%d", i, arg)
				s.Put(k, []byte(v))
				model[string(k)] = v
			case 1:
				s.Delete(k)
				delete(model, string(k))
			case 2:
				s.Flush()
			case 3:
				s.Compact()
			case 4:
				// A purge registration is a strong delete: a still-live
				// value is tombstoned at registration.
				s.RegisterPurge(k)
				delete(model, string(k))
			}
			if got, ok := s.Get(k); ok != (model[string(k)] != "") ||
				(ok && string(got) != model[string(k)]) {
				t.Fatalf("op %d: Get(%q) = %q,%v; model %q", i, k, got, ok, model[string(k)])
			}
		}
		// Scan must agree with the model exactly, in key order.
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		var gotKeys []string
		s.Scan(func(k, v []byte) bool {
			gotKeys = append(gotKeys, string(k))
			if string(v) != model[string(k)] {
				t.Fatalf("Scan(%q) = %q, model %q", k, v, model[string(k)])
			}
			return true
		})
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("Scan saw %d keys, model has %d", len(gotKeys), len(wantKeys))
		}
		for i := range gotKeys {
			if gotKeys[i] != wantKeys[i] {
				t.Fatalf("Scan order: got %q at %d, want %q", gotKeys[i], i, wantKeys[i])
			}
		}
		if n := s.Len(); n != len(model) {
			t.Fatalf("Len = %d, model %d", n, len(model))
		}
	})
}
