package lsm

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGetDoesNotSerializeBehindScan is the shared-lock regression test:
// a Scan holds the store's read lock for its whole merge; a concurrent
// Get must proceed under the same shared lock. The old exclusive-lock
// Get would queue behind the scan's RLock and this test would time out.
func TestGetDoesNotSerializeBehindScan(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 4})
	for i := 0; i < 32; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
	}

	scanEntered := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		first := true
		s.Scan(func(_, _ []byte) bool {
			if first {
				first = false
				close(scanEntered)
				<-release // hold the read lock mid-scan
			}
			return true
		})
	}()
	<-scanEntered

	got := make(chan bool, 1)
	go func() {
		_, ok := s.Get([]byte("k31"))
		got <- ok
	}()
	select {
	case ok := <-got:
		if !ok {
			t.Error("Get missed a live key")
		}
	case <-time.After(5 * time.Second):
		t.Error("Get blocked behind an in-flight Scan: reads serialize")
	}
	close(release)
	<-scanDone
}

// TestConcurrentGetHammer drives parallel Gets against concurrent
// mutations; run with -race to prove the shared-lock read path and the
// atomic read counters are data-race free.
func TestConcurrentGetHammer(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 8})
	for i := 0; i < 64; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v0"))
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Get([]byte(fmt.Sprintf("k%02d", (r*7+i)%64)))
				if i%100 == 0 {
					s.Len()
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			s.Put([]byte(fmt.Sprintf("k%02d", i%64)), []byte(fmt.Sprintf("v%d", i)))
			if i%50 == 0 {
				s.Delete([]byte(fmt.Sprintf("k%02d", i%64)))
				s.Put([]byte(fmt.Sprintf("k%02d", i%64)), []byte("back"))
			}
		}
	}()
	wg.Wait()
	if st := s.Stats(); st.Gets != 8*1000 {
		t.Fatalf("read counter = %d, want %d", st.Gets, 8*1000)
	}
}

// TestReadsAdvancePurgeWindow: the bounded-residency guarantee must
// hold on a read-only stream too — a purge obligation registered before
// a burst of Gets is discharged within the operation window even though
// no mutation ever runs.
func TestReadsAdvancePurgeWindow(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 4, PurgeWithinOps: 16})
	for i := 0; i < 16; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("secret-%02d", i)))
	}
	s.RegisterPurge([]byte("k03"))
	if s.PendingPurges() != 1 {
		t.Fatalf("pending purges = %d, want 1", s.PendingPurges())
	}
	for i := 0; i < 64; i++ { // > PurgeWithinOps reads, zero mutations
		s.Get([]byte(fmt.Sprintf("k%02d", i%16)))
	}
	if s.PendingPurges() != 0 {
		t.Fatal("a read-only stream did not advance the purge window")
	}
	if s.ForensicScan([]byte("secret-03")) {
		t.Fatal("purged bytes physically resident after the window")
	}
}
