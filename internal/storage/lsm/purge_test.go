package lsm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentScanAndMutate pins the store's concurrency contract
// under -race: scans hold the read lock for the whole merge, so they
// must never observe torn entries while writers splice and overwrite
// memtable nodes.
func TestConcurrentScanAndMutate(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 16})
	for i := 0; i < 64; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("k%03d", (w*31+i)%64))
				if i%5 == 0 {
					s.Delete(k)
				} else {
					s.Put(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Scan(func(k, v []byte) bool { return len(k) > 0 && v != nil })
		}
	}()
	wg.Wait()
}

// TestNoGraceSentinel is the regression test for the GCGraceSeqs
// zero-value bug: 0 silently meant "default 100000", so an
// immediate-purge grace was unconfigurable. NoGrace must GC every
// tombstone at the next full compaction; the zero value must keep the
// default behaviour (tombstones survive a full compaction well inside
// the default grace).
func TestNoGraceSentinel(t *testing.T) {
	s := New(Options{GCGraceSeqs: NoGrace})
	s.Put([]byte("k"), []byte("v"))
	s.Delete([]byte("k"))
	s.Compact()
	if sp := s.Space(); sp.Tombstones != 0 {
		t.Fatalf("NoGrace: %d tombstones survive a full compaction", sp.Tombstones)
	}
	if s.Stats().TombstonesGCed == 0 {
		t.Fatal("NoGrace: no tombstone was GC'd")
	}

	d := New(Options{}) // zero value: default grace
	d.Put([]byte("k"), []byte("v"))
	d.Delete([]byte("k"))
	d.Compact()
	if sp := d.Space(); sp.Tombstones != 1 {
		t.Fatalf("default grace: tombstone count = %d, want 1 (inside the grace)", sp.Tombstones)
	}
}

// TestRegisterPurgeOverridesGrace: a purge obligation removes the
// tombstone and every shadowed version inside the bounded op window,
// even under the huge grace the hazard scenario models.
func TestRegisterPurgeOverridesGrace(t *testing.T) {
	s := New(Options{
		MemtableFlushEntries: 4,
		GCGraceSeqs:          1 << 40,
		PurgeWithinOps:       8,
	})
	secret := []byte("SSN-123-45-6789")
	s.Put([]byte("victim"), secret)
	// Shadow the value across several runs.
	for i := 0; i < 12; i++ {
		s.Put([]byte(fmt.Sprintf("fill-%02d", i)), []byte("x"))
	}
	s.Delete([]byte("victim"))
	if !s.ForensicScan(secret) {
		t.Fatal("setup: secret should be physically resident after the tombstone delete")
	}
	s.RegisterPurge([]byte("victim"))
	if got := s.PendingPurges(); got != 1 {
		t.Fatalf("PendingPurges = %d, want 1", got)
	}
	// Drive ops up to the bound; the store must purge by itself.
	for i := 0; i < 8; i++ {
		s.Get([]byte(fmt.Sprintf("fill-%02d", i)))
	}
	if got := s.PendingPurges(); got != 0 {
		t.Fatalf("obligation undischarged after the bounded window (pending=%d)", got)
	}
	if s.ForensicScan(secret) {
		t.Fatal("secret still physically resident after the purge window")
	}
	st := s.Stats()
	if st.PurgesRegistered != 1 || st.PurgesDischarged != 1 || st.PurgeCompactions == 0 {
		t.Fatalf("purge counters = %+v", st)
	}
	// Unrelated keys keep their data.
	if !s.Has([]byte("fill-00")) {
		t.Fatal("purge removed an unrelated key")
	}
}

// TestForcePurgeDischargesImmediately covers the explicit purge path
// the erasure engine's reclamation uses.
func TestForcePurgeDischargesImmediately(t *testing.T) {
	s := New(Options{GCGraceSeqs: 1 << 40})
	s.Put([]byte("a"), []byte("payload-a"))
	s.Put([]byte("b"), []byte("payload-b"))
	s.Delete([]byte("a"))
	s.RegisterPurge([]byte("a"))
	if n := s.ForcePurge(); n != 1 {
		t.Fatalf("ForcePurge discharged %d obligations, want 1", n)
	}
	if s.ForensicScan([]byte("payload-a")) {
		t.Fatal("purged payload still resident")
	}
	if v, ok := s.Get([]byte("b")); !ok || !bytes.Equal(v, []byte("payload-b")) {
		t.Fatal("unrelated key lost")
	}
}

// TestPurgeSparesNewerVersions: data re-collected under the same key
// after registration is lawful new data and must survive the purge.
func TestPurgeSparesNewerVersions(t *testing.T) {
	s := New(Options{GCGraceSeqs: 1 << 40})
	s.Put([]byte("k"), []byte("old-payload"))
	s.Delete([]byte("k"))
	s.RegisterPurge([]byte("k"))
	s.Put([]byte("k"), []byte("new-payload")) // re-collection after the erasure
	s.ForcePurge()
	if v, ok := s.Get([]byte("k")); !ok || !bytes.Equal(v, []byte("new-payload")) {
		t.Fatalf("re-collected value lost: %q %v", v, ok)
	}
	if s.ForensicScan([]byte("old-payload")) {
		t.Fatal("pre-erasure version still resident")
	}
}

// TestSanitizeLSM drives the cryptox.Sanitizable hooks: a sanitize pass
// removes all tombstones and shadowed versions and verification then
// holds.
func TestSanitizeLSM(t *testing.T) {
	s := New(Options{MemtableFlushEntries: 4, GCGraceSeqs: 1 << 40})
	for i := 0; i < 10; i++ {
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
	}
	for i := 0; i < 10; i++ { // shadow every value
		s.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("w%02d", i)))
	}
	s.Delete([]byte("k00"))
	if s.VerifySanitized(0x00) {
		t.Fatal("store with shadowed versions verifies sanitized")
	}
	if n := s.SanitizePass(0x00); n <= 0 {
		t.Fatalf("SanitizePass reclaimed %d bytes", n)
	}
	if !s.VerifySanitized(0x00) {
		t.Fatal("store does not verify sanitized after the pass")
	}
	if s.ForensicScan([]byte("v03")) {
		t.Fatal("shadowed version survives sanitization")
	}
	if !s.Has([]byte("k03")) || s.Has([]byte("k00")) {
		t.Fatal("live set changed by sanitization")
	}
}
