package audit

import (
	"fmt"
	"sync"

	"github.com/datacase/datacase/internal/core"
)

// QueryLogger is the P_GBench grounding of histories: every query and
// its response is logged (no CSV), each entry rendered to a log line —
// "a slight increase in the information being logged" relative to
// P_Base's CSV rows (§4.2). Entries also stay structured so per-unit
// filtering and erasure are cheap.
type QueryLogger struct {
	mu      sync.RWMutex
	entries []Entry
	lines   [][]byte
	byUnit  map[core.UnitID][]int
	bytes   int64
}

// NewQueryLogger returns an empty query logger.
func NewQueryLogger() *QueryLogger {
	return &QueryLogger{byUnit: make(map[core.UnitID][]int)}
}

// Name implements Logger.
func (l *QueryLogger) Name() string { return "query" }

// Log implements Logger.
func (l *QueryLogger) Log(e Entry) error {
	// Deep-copy payloads: callers may reuse buffers.
	e.Response = append([]byte(nil), e.Response...)
	e.PolicySnapshot = append([]byte(nil), e.PolicySnapshot...)
	// Render the full log line (query + response + action context), as
	// a statement-logging database would.
	line := fmt.Sprintf("%d unit=%s entity=%s purpose=%s action=%s query=%q response=%q",
		e.Tuple.At, e.Tuple.Unit, e.Tuple.Entity, e.Tuple.Purpose,
		e.Tuple.Action.Kind, e.Query, e.Response)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byUnit[e.Tuple.Unit] = append(l.byUnit[e.Tuple.Unit], len(l.entries))
	l.entries = append(l.entries, e)
	l.lines = append(l.lines, []byte(line))
	// The log's on-disk form is the rendered line; the structured entry
	// is an in-memory index over it (counted as small per-line overhead).
	l.bytes += int64(len(line)) + 16
	return nil
}

// Count implements Logger.
func (l *QueryLogger) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, e := range l.entries {
		if e.Tuple.Unit != "" {
			n++
		}
	}
	return n
}

// SizeBytes implements Logger.
func (l *QueryLogger) SizeBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytes
}

// ContainsUnit implements Logger.
func (l *QueryLogger) ContainsUnit(unit core.UnitID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.byUnit[unit]) > 0
}

// EraseUnit implements Logger: entries are blanked in place (indices of
// other units remain valid).
func (l *QueryLogger) EraseUnit(unit core.UnitID) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := l.byUnit[unit]
	for _, i := range idx {
		l.bytes -= int64(len(l.lines[i])) + 16
		l.entries[i] = Entry{}
		l.lines[i] = nil
	}
	delete(l.byUnit, unit)
	return len(idx), nil
}

// ReconstructHistory implements Logger.
func (l *QueryLogger) ReconstructHistory() (*core.History, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	h := core.NewHistory()
	for _, e := range l.entries {
		if e.Tuple.Unit == "" {
			continue // erased entry
		}
		if err := h.Append(e.Tuple); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Entries returns a snapshot of live entries (tests and reports).
func (l *QueryLogger) Entries() []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		if e.Tuple.Unit != "" {
			out = append(out, e)
		}
	}
	return out
}

func entrySize(e Entry) int64 {
	return int64(len(e.Tuple.Unit) + len(e.Tuple.Purpose) + len(e.Tuple.Entity) +
		len(e.Tuple.Action.SystemAction) + len(e.Query) + len(e.Response) +
		len(e.PolicySnapshot) + 32)
}
