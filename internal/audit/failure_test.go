package audit

import (
	"testing"

	"github.com/datacase/datacase/internal/core"
)

// Failure injection: tampered or undecryptable logs must fail loudly
// during history reconstruction — a silent gap in the action-history
// would forfeit demonstrable compliance.

func TestEncryptedLoggerTamperDetection(t *testing.T) {
	l := encLogger(t)
	if err := l.Log(entry("u1", core.ActionRead, 1)); err != nil {
		t.Fatal(err)
	}
	// Flip a ciphertext byte.
	l.mu.Lock()
	for _, group := range l.sealed {
		group[0][len(group[0])-1] ^= 0xFF
	}
	l.mu.Unlock()
	if _, err := l.ReconstructHistory(); err == nil {
		t.Fatal("tampered log reconstructed without error")
	}
}

func TestCSVLoggerGarbageDetection(t *testing.T) {
	l := NewCSVLogger(false)
	if err := l.Log(entry("u1", core.ActionRead, 1)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the buffer with a malformed row (wrong field count).
	l.mu.Lock()
	l.buf.WriteString("only,three,fields\n")
	l.mu.Unlock()
	if _, err := l.ReconstructHistory(); err == nil {
		t.Fatal("corrupted CSV reconstructed without error")
	}
}

func TestCSVLoggerBadActionKind(t *testing.T) {
	l := NewCSVLogger(false)
	l.mu.Lock()
	l.buf.WriteString("u,p,e,launch-missiles,x,false,1,q,r\n")
	l.mu.Unlock()
	if _, err := l.ReconstructHistory(); err == nil {
		t.Fatal("unknown action kind accepted")
	}
}
