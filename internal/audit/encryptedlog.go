package audit

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/cryptox"
)

// EncryptedLogger is the P_SYS grounding of histories: entries —
// including policy snapshots for demonstrable accountability — are
// serialized and AES-sealed before storage, grouped per unit so the
// erasure grounding can delete "logs of the data units being deleted"
// (§4.2). Every append pays the cipher cost.
type EncryptedLogger struct {
	sealer cryptox.Sealer

	mu     sync.RWMutex
	sealed map[core.UnitID][][]byte
	order  []core.UnitID // unit of each append, for stable reconstruction
	bytes  int64
	n      int
}

// NewEncryptedLogger returns a logger sealing with the given sealer
// (P_SYS uses AES-128, §4.2).
func NewEncryptedLogger(sealer cryptox.Sealer) *EncryptedLogger {
	return &EncryptedLogger{
		sealer: sealer,
		sealed: make(map[core.UnitID][][]byte),
	}
}

// Name implements Logger.
func (l *EncryptedLogger) Name() string { return "encrypted" }

// Log implements Logger.
func (l *EncryptedLogger) Log(e Entry) error {
	plain := marshalEntry(e)
	ct, err := l.sealer.Seal(plain)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealed[e.Tuple.Unit] = append(l.sealed[e.Tuple.Unit], ct)
	l.order = append(l.order, e.Tuple.Unit)
	l.bytes += int64(len(ct))
	l.n++
	return nil
}

// Count implements Logger.
func (l *EncryptedLogger) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.n
}

// SizeBytes implements Logger.
func (l *EncryptedLogger) SizeBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.bytes
}

// ContainsUnit implements Logger.
func (l *EncryptedLogger) ContainsUnit(unit core.UnitID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.sealed[unit]) > 0
}

// EraseUnit implements Logger: drops the unit's sealed group outright.
func (l *EncryptedLogger) EraseUnit(unit core.UnitID) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	group := l.sealed[unit]
	if len(group) == 0 {
		return 0, nil
	}
	for _, ct := range group {
		l.bytes -= int64(len(ct))
	}
	delete(l.sealed, unit)
	removed := len(group)
	l.n -= removed
	// Scrub the order list so reconstruction skips them.
	for i, u := range l.order {
		if u == unit {
			l.order[i] = ""
		}
	}
	return removed, nil
}

// ReconstructHistory implements Logger: decrypts every entry, in append
// order.
func (l *EncryptedLogger) ReconstructHistory() (*core.History, error) {
	l.mu.RLock()
	// Snapshot per-unit cursors to replay the interleaving.
	cursor := make(map[core.UnitID]int)
	order := append([]core.UnitID(nil), l.order...)
	groups := make(map[core.UnitID][][]byte, len(l.sealed))
	for u, g := range l.sealed {
		groups[u] = g
	}
	l.mu.RUnlock()

	h := core.NewHistory()
	for _, u := range order {
		if u == "" {
			continue
		}
		g := groups[u]
		i := cursor[u]
		if i >= len(g) {
			continue
		}
		cursor[u] = i + 1
		plain, err := l.sealer.Open(g[i])
		if err != nil {
			return nil, fmt.Errorf("audit: decrypt log entry: %w", err)
		}
		e, err := unmarshalEntry(plain)
		if err != nil {
			return nil, err
		}
		if err := h.Append(e.Tuple); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// marshalEntry serializes an entry:
//
//	unit purpose entity sysaction query response snapshot (len-prefixed)
//	kind(1) required(1) at(8)
func marshalEntry(e Entry) []byte {
	var buf []byte
	app := func(b []byte) {
		var l4 [4]byte
		binary.BigEndian.PutUint32(l4[:], uint32(len(b)))
		buf = append(buf, l4[:]...)
		buf = append(buf, b...)
	}
	app([]byte(e.Tuple.Unit))
	app([]byte(e.Tuple.Purpose))
	app([]byte(e.Tuple.Entity))
	app([]byte(e.Tuple.Action.SystemAction))
	app([]byte(e.Query))
	app(e.Response)
	app(e.PolicySnapshot)
	buf = append(buf, byte(e.Tuple.Action.Kind))
	if e.Tuple.Action.RequiredByRegulation {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var t8 [8]byte
	binary.BigEndian.PutUint64(t8[:], uint64(e.Tuple.At))
	buf = append(buf, t8[:]...)
	return buf
}

func unmarshalEntry(buf []byte) (Entry, error) {
	var e Entry
	take := func() ([]byte, error) {
		if len(buf) < 4 {
			return nil, fmt.Errorf("audit: truncated entry")
		}
		n := int(binary.BigEndian.Uint32(buf[:4]))
		buf = buf[4:]
		if len(buf) < n {
			return nil, fmt.Errorf("audit: truncated entry field")
		}
		b := buf[:n]
		buf = buf[n:]
		return b, nil
	}
	fields := make([][]byte, 7)
	for i := range fields {
		b, err := take()
		if err != nil {
			return e, err
		}
		fields[i] = b
	}
	if len(buf) != 10 {
		return e, fmt.Errorf("audit: bad entry tail (%d bytes)", len(buf))
	}
	e.Tuple.Unit = core.UnitID(fields[0])
	e.Tuple.Purpose = core.Purpose(fields[1])
	e.Tuple.Entity = core.EntityID(fields[2])
	e.Tuple.Action.SystemAction = string(fields[3])
	e.Query = string(fields[4])
	e.Response = append([]byte(nil), fields[5]...)
	e.PolicySnapshot = append([]byte(nil), fields[6]...)
	e.Tuple.Action.Kind = core.ActionKind(buf[0])
	e.Tuple.Action.RequiredByRegulation = buf[1] == 1
	e.Tuple.At = core.Time(binary.BigEndian.Uint64(buf[2:10]))
	return e, nil
}
