package audit

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"
	"sync"

	"github.com/datacase/datacase/internal/core"
)

// CSVLogger is the P_Base grounding of histories: native CSV logging
// with a security policy recording query responses at row level. Entries
// are CSV lines in an append-only buffer — cheap to write, awkward to
// erase (erasure rewrites the whole buffer).
type CSVLogger struct {
	mu  sync.Mutex
	buf bytes.Buffer
	// w is a persistent writer over buf (a real CSV log keeps one open
	// file handle, not one writer per record).
	w *csv.Writer
	n int
	// logResponses controls whether response payloads are recorded.
	logResponses bool
}

// NewCSVLogger returns an empty CSV logger. logResponses enables
// row-level response recording.
func NewCSVLogger(logResponses bool) *CSVLogger {
	l := &CSVLogger{logResponses: logResponses}
	l.w = csv.NewWriter(&l.buf)
	return l
}

// Name implements Logger.
func (l *CSVLogger) Name() string { return "csv" }

// Log implements Logger.
func (l *CSVLogger) Log(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	w := l.w
	resp := ""
	if l.logResponses {
		resp = string(e.Response)
	}
	record := []string{
		string(e.Tuple.Unit),
		string(e.Tuple.Purpose),
		string(e.Tuple.Entity),
		e.Tuple.Action.Kind.String(),
		e.Tuple.Action.SystemAction,
		strconv.FormatBool(e.Tuple.Action.RequiredByRegulation),
		strconv.FormatInt(int64(e.Tuple.At), 10),
		e.Query,
		resp,
	}
	if err := w.Write(record); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	l.n++
	return nil
}

// Count implements Logger.
func (l *CSVLogger) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// SizeBytes implements Logger.
func (l *CSVLogger) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.buf.Len())
}

// ContainsUnit implements Logger.
func (l *CSVLogger) ContainsUnit(unit core.UnitID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	records, err := l.parseLocked()
	if err != nil {
		return false
	}
	for _, r := range records {
		if r[0] == string(unit) {
			return true
		}
	}
	return false
}

// EraseUnit implements Logger: it rewrites the CSV buffer without the
// unit's lines — possible but costly, which is faithful to retrofitting
// erasure onto flat log files.
func (l *CSVLogger) EraseUnit(unit core.UnitID) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	records, err := l.parseLocked()
	if err != nil {
		return 0, err
	}
	var out bytes.Buffer
	w := csv.NewWriter(&out)
	removed := 0
	kept := 0
	for _, r := range records {
		if r[0] == string(unit) {
			removed++
			continue
		}
		if err := w.Write(r); err != nil {
			return 0, err
		}
		kept++
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return 0, err
	}
	l.buf = out
	l.w = csv.NewWriter(&l.buf)
	l.n = kept
	return removed, nil
}

// ReconstructHistory implements Logger.
func (l *CSVLogger) ReconstructHistory() (*core.History, error) {
	l.mu.Lock()
	records, err := l.parseLocked()
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	h := core.NewHistory()
	for _, r := range records {
		t, err := tupleFromFields(r)
		if err != nil {
			return nil, err
		}
		if err := h.Append(t); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func (l *CSVLogger) parseLocked() ([][]string, error) {
	rd := csv.NewReader(bytes.NewReader(l.buf.Bytes()))
	rd.FieldsPerRecord = 9
	return rd.ReadAll()
}

func tupleFromFields(r []string) (core.HistoryTuple, error) {
	if len(r) < 7 {
		return core.HistoryTuple{}, fmt.Errorf("audit: short CSV record (%d fields)", len(r))
	}
	kind, err := actionKindFromName(r[3])
	if err != nil {
		return core.HistoryTuple{}, err
	}
	required, err := strconv.ParseBool(r[5])
	if err != nil {
		return core.HistoryTuple{}, fmt.Errorf("audit: bad required flag %q", r[5])
	}
	at, err := strconv.ParseInt(r[6], 10, 64)
	if err != nil {
		return core.HistoryTuple{}, fmt.Errorf("audit: bad timestamp %q", r[6])
	}
	return core.HistoryTuple{
		Unit:    core.UnitID(r[0]),
		Purpose: core.Purpose(r[1]),
		Entity:  core.EntityID(r[2]),
		Action: core.Action{
			Kind:                 kind,
			SystemAction:         r[4],
			RequiredByRegulation: required,
		},
		At: core.Time(at),
	}, nil
}

// actionKindFromName reverses core.ActionKind.String.
func actionKindFromName(name string) (core.ActionKind, error) {
	for k := core.ActionKind(0); ; k++ {
		if !k.Valid() {
			return 0, fmt.Errorf("audit: unknown action kind %q", name)
		}
		if k.String() == name {
			return k, nil
		}
	}
}
