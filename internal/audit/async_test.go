package audit

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datacase/datacase/internal/core"
)

// TestAsyncLoggerContract: the async wrapper must satisfy the same
// behavioural contract as the loggers it wraps (its accessors flush, so
// the contract's synchronous expectations hold).
func TestAsyncLoggerContract(t *testing.T) {
	loggerContract(t, func(t *testing.T) Logger {
		t.Helper()
		a := NewAsync(NewQueryLogger(), 0)
		t.Cleanup(func() { _ = a.Close() })
		return a
	})
}

// TestAsyncLoggerDeliversAll: every async record lands, none
// duplicated, whatever the interleaving of producers.
func TestAsyncLoggerDeliversAll(t *testing.T) {
	inner := NewQueryLogger()
	a := NewAsync(inner, 16)
	defer a.Close()
	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				a.LogAsync(entry(core.UnitID(fmt.Sprintf("u%d-%d", p, i)), core.ActionRead, core.Time(i)))
			}
		}(p)
	}
	wg.Wait()
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := inner.Count(); got != producers*perProducer {
		t.Fatalf("inner holds %d entries, want %d", got, producers*perProducer)
	}
	st := a.Stats()
	if st.Enqueued != producers*perProducer {
		t.Fatalf("enqueued = %d, want %d", st.Enqueued, producers*perProducer)
	}
	if st.MaxDepth > 16 {
		t.Fatalf("queue depth %d exceeded its bound 16", st.MaxDepth)
	}
}

// TestAsyncLoggerSyncLogOrdering: a synchronous record must land after
// every record enqueued before it (prefix consistency at sync points).
func TestAsyncLoggerSyncLogOrdering(t *testing.T) {
	inner := NewQueryLogger()
	a := NewAsync(inner, 64)
	defer a.Close()
	for i := 0; i < 32; i++ {
		a.LogAsync(entry("read-unit", core.ActionRead, core.Time(i)))
	}
	if err := a.Log(entry("write-unit", core.ActionWrite, 100)); err != nil {
		t.Fatal(err)
	}
	entries := inner.Entries()
	if len(entries) != 33 {
		t.Fatalf("inner holds %d entries, want 33", len(entries))
	}
	if last := entries[len(entries)-1]; last.Tuple.Unit != "write-unit" {
		t.Fatalf("synchronous record is not last (last = %s)", last.Tuple.Unit)
	}
}

// TestAsyncLoggerEraseUnitFlushes: log erasure must cover records still
// in the queue — an entry of the erased unit must never land after the
// erasure.
func TestAsyncLoggerEraseUnitFlushes(t *testing.T) {
	inner := NewQueryLogger()
	a := NewAsync(inner, 64)
	defer a.Close()
	for i := 0; i < 16; i++ {
		a.LogAsync(entry("victim", core.ActionRead, core.Time(i)))
	}
	n, err := a.EraseUnit("victim")
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("erased %d entries, want 16 (queued records escaped the erasure)", n)
	}
	if a.ContainsUnit("victim") {
		t.Fatal("victim entries survived erasure")
	}
}

// TestAsyncLoggerBackpressure: a queue of depth 1 still delivers
// everything — producers block rather than drop.
func TestAsyncLoggerBackpressure(t *testing.T) {
	inner := NewQueryLogger()
	a := NewAsync(inner, 1)
	defer a.Close()
	for i := 0; i < 100; i++ {
		a.LogAsync(entry(core.UnitID(fmt.Sprintf("u%d", i)), core.ActionRead, core.Time(i)))
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := inner.Count(); got != 100 {
		t.Fatalf("inner holds %d entries, want 100", got)
	}
}

// TestAsyncLoggerCloseDegradesToSync: after Close the sink keeps
// working synchronously (no record loss at shutdown).
func TestAsyncLoggerCloseDegradesToSync(t *testing.T) {
	inner := NewQueryLogger()
	a := NewAsync(inner, 8)
	a.LogAsync(entry("u1", core.ActionRead, 1))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a.LogAsync(entry("u2", core.ActionRead, 2))
	if err := a.Log(entry("u3", core.ActionWrite, 3)); err != nil {
		t.Fatal(err)
	}
	if got := inner.Count(); got != 3 {
		t.Fatalf("inner holds %d entries, want 3", got)
	}
}

// slowLogger delays every Log, so producers can outpace the drainer.
type slowLogger struct {
	QueryLogger
	delay time.Duration
}

func (s *slowLogger) Log(e Entry) error {
	time.Sleep(s.delay)
	return s.QueryLogger.Log(e)
}

// TestAsyncLoggerFlushCompletesUnderSustainedLoad: Flush waits for the
// records enqueued before it, not for the queue to run dry — under
// producers that continuously refill the queue faster than the slow
// inner logger drains it, a queue-empty flush would block forever
// (stalling audits and subject-access requests in the DB layer).
func TestAsyncLoggerFlushCompletesUnderSustainedLoad(t *testing.T) {
	inner := &slowLogger{delay: 200 * time.Microsecond}
	inner.byUnit = make(map[core.UnitID][]int)
	a := NewAsync(inner, 4)
	defer a.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.LogAsync(entry(core.UnitID(fmt.Sprintf("u%d-%d", p, i)), core.ActionRead, core.Time(i)))
			}
		}(p)
	}
	done := make(chan error, 1)
	go func() { done <- a.Flush() }()
	select {
	case err := <-done:
		if err != nil {
			t.Error(err)
		}
	case <-time.After(10 * time.Second):
		t.Error("Flush blocked behind concurrent producers")
	}
	close(stop)
	wg.Wait()
}

// failingLogger fails every Log after a threshold.
type failingLogger struct {
	QueryLogger
	n, failAfter int
}

func (f *failingLogger) Log(e Entry) error {
	f.n++
	if f.n > f.failAfter {
		return errors.New("disk full")
	}
	return f.QueryLogger.Log(e)
}

// TestAsyncLoggerErrorSurfaces: a drain-time inner failure must surface
// on the next synchronous call, not vanish.
func TestAsyncLoggerErrorSurfaces(t *testing.T) {
	inner := &failingLogger{failAfter: 1}
	inner.byUnit = make(map[core.UnitID][]int)
	a := NewAsync(inner, 8)
	defer a.Close()
	a.LogAsync(entry("u1", core.ActionRead, 1))
	a.LogAsync(entry("u2", core.ActionRead, 2)) // this one fails in the drainer
	if err := a.Flush(); err == nil {
		t.Fatal("drain error did not surface on Flush")
	}
}

// TestAsyncLoggerDeepCopies: the producer may reuse its response buffer
// after LogAsync returns; the queued record must not alias it.
func TestAsyncLoggerDeepCopies(t *testing.T) {
	inner := NewQueryLogger()
	a := NewAsync(inner, 8)
	defer a.Close()
	buf := []byte("original")
	e := entry("u1", core.ActionRead, 1)
	e.Response = buf
	a.LogAsync(e)
	copy(buf, "MUTATED!")
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got := inner.Entries()[0].Response
	if string(got) != "original" {
		t.Fatalf("queued record aliased the caller's buffer: %q", got)
	}
}
