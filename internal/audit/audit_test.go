package audit

import (
	"errors"
	"fmt"
	"testing"

	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/cryptox"
)

func entry(unit core.UnitID, kind core.ActionKind, at core.Time) Entry {
	return Entry{
		Tuple: core.HistoryTuple{
			Unit:    unit,
			Purpose: "billing",
			Entity:  "netflix",
			Action:  core.Action{Kind: kind, SystemAction: "SELECT"},
			At:      at,
		},
		Query:    "SELECT * FROM data WHERE key = ?",
		Response: []byte("row-payload"),
	}
}

func encLogger(t *testing.T) *EncryptedLogger {
	t.Helper()
	key, err := cryptox.GenerateKey(cryptox.AES128)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cryptox.NewAESGCM(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewEncryptedLogger(s)
}

// loggerContract runs the behaviour shared by all three groundings.
func loggerContract(t *testing.T, mk func(t *testing.T) Logger) {
	t.Helper()

	t.Run("log_and_count", func(t *testing.T) {
		l := mk(t)
		for i := 0; i < 10; i++ {
			if err := l.Log(entry("u1", core.ActionRead, core.Time(i))); err != nil {
				t.Fatal(err)
			}
		}
		if l.Count() != 10 {
			t.Fatalf("Count = %d", l.Count())
		}
		if l.SizeBytes() <= 0 {
			t.Fatal("SizeBytes not tracked")
		}
	})

	t.Run("contains_unit", func(t *testing.T) {
		l := mk(t)
		if err := l.Log(entry("u1", core.ActionRead, 1)); err != nil {
			t.Fatal(err)
		}
		if !l.ContainsUnit("u1") {
			t.Fatal("ContainsUnit(u1) = false")
		}
		if l.ContainsUnit("ghost") {
			t.Fatal("ContainsUnit(ghost) = true")
		}
	})

	t.Run("reconstruct_history", func(t *testing.T) {
		l := mk(t)
		for i := 0; i < 5; i++ {
			if err := l.Log(entry("u1", core.ActionRead, core.Time(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Log(entry("u2", core.ActionDelete, 9)); err != nil {
			t.Fatal(err)
		}
		h, err := l.ReconstructHistory()
		if err != nil {
			t.Fatal(err)
		}
		if h.Len() != 6 {
			t.Fatalf("history len = %d", h.Len())
		}
		hu1 := h.Of("u1")
		if len(hu1) != 5 {
			t.Fatalf("H(u1) = %d tuples", len(hu1))
		}
		for i, tu := range hu1 {
			if tu.At != core.Time(i) || tu.Action.Kind != core.ActionRead {
				t.Fatalf("tuple %d = %v", i, tu)
			}
		}
		last, ok := h.Last("u2")
		if !ok || last.Action.Kind != core.ActionDelete {
			t.Fatalf("Last(u2) = %v, %v", last, ok)
		}
	})

	t.Run("erase_unit", func(t *testing.T) {
		l := mk(t)
		for i := 0; i < 4; i++ {
			if err := l.Log(entry("victim", core.ActionRead, core.Time(i))); err != nil {
				t.Fatal(err)
			}
			if err := l.Log(entry("bystander", core.ActionRead, core.Time(i))); err != nil {
				t.Fatal(err)
			}
		}
		before := l.SizeBytes()
		n, err := l.EraseUnit("victim")
		if errors.Is(err, ErrEraseUnsupported) {
			t.Skip("logger does not support per-unit erasure")
		}
		if err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Fatalf("erased %d entries, want 4", n)
		}
		if l.ContainsUnit("victim") {
			t.Fatal("victim entries survive erasure")
		}
		if !l.ContainsUnit("bystander") {
			t.Fatal("bystander entries damaged")
		}
		if l.SizeBytes() >= before {
			t.Fatal("size did not shrink")
		}
		h, err := l.ReconstructHistory()
		if err != nil {
			t.Fatal(err)
		}
		if len(h.Of("victim")) != 0 || len(h.Of("bystander")) != 4 {
			t.Fatalf("post-erase history wrong: victim=%d bystander=%d",
				len(h.Of("victim")), len(h.Of("bystander")))
		}
	})
}

func TestCSVLoggerContract(t *testing.T) {
	loggerContract(t, func(t *testing.T) Logger { return NewCSVLogger(true) })
}

func TestQueryLoggerContract(t *testing.T) {
	loggerContract(t, func(t *testing.T) Logger { return NewQueryLogger() })
}

func TestEncryptedLoggerContract(t *testing.T) {
	loggerContract(t, func(t *testing.T) Logger { return encLogger(t) })
}

func TestCSVRoundTripPreservesActionDetails(t *testing.T) {
	l := NewCSVLogger(true)
	e := entry("u,with,commas", core.ActionErase, 42)
	e.Tuple.Action.RequiredByRegulation = true
	e.Tuple.Action.SystemAction = "DELETE+VACUUM"
	if err := l.Log(e); err != nil {
		t.Fatal(err)
	}
	h, err := l.ReconstructHistory()
	if err != nil {
		t.Fatal(err)
	}
	tu, ok := h.Last("u,with,commas")
	if !ok {
		t.Fatal("tuple lost")
	}
	if tu.Action.Kind != core.ActionErase || !tu.Action.RequiredByRegulation ||
		tu.Action.SystemAction != "DELETE+VACUUM" || tu.At != 42 {
		t.Fatalf("tuple = %+v", tu)
	}
}

func TestCSVResponseLoggingToggle(t *testing.T) {
	noResp := NewCSVLogger(false)
	withResp := NewCSVLogger(true)
	e := entry("u", core.ActionRead, 1)
	e.Response = make([]byte, 1024)
	if err := noResp.Log(e); err != nil {
		t.Fatal(err)
	}
	if err := withResp.Log(e); err != nil {
		t.Fatal(err)
	}
	if noResp.SizeBytes() >= withResp.SizeBytes() {
		t.Fatal("response logging should cost space")
	}
}

func TestQueryLoggerDeepCopies(t *testing.T) {
	l := NewQueryLogger()
	resp := []byte("original")
	e := entry("u", core.ActionRead, 1)
	e.Response = resp
	if err := l.Log(e); err != nil {
		t.Fatal(err)
	}
	resp[0] = 'X'
	if string(l.Entries()[0].Response) != "original" {
		t.Fatal("logger aliased caller's response buffer")
	}
}

func TestEncryptedLoggerCiphertextAtRest(t *testing.T) {
	l := encLogger(t)
	e := entry("u", core.ActionRead, 1)
	e.Response = []byte("VERY-SECRET-RESPONSE")
	if err := l.Log(e); err != nil {
		t.Fatal(err)
	}
	// The sealed blobs must not contain the plaintext.
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, group := range l.sealed {
		for _, ct := range group {
			if containsBytes(ct, []byte("VERY-SECRET-RESPONSE")) {
				t.Fatal("plaintext at rest in encrypted log")
			}
		}
	}
}

func containsBytes(h, n []byte) bool {
	if len(n) == 0 || len(h) < len(n) {
		return false
	}
outer:
	for i := 0; i+len(n) <= len(h); i++ {
		for j := range n {
			if h[i+j] != n[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

func TestEncryptedLoggerPolicySnapshotRoundTrip(t *testing.T) {
	l := encLogger(t)
	e := entry("u", core.ActionWrite, 5)
	e.PolicySnapshot = []byte(`[{"purpose":"billing"}]`)
	if err := l.Log(e); err != nil {
		t.Fatal(err)
	}
	h, err := l.ReconstructHistory()
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Fatalf("history len = %d", h.Len())
	}
}

func TestMarshalEntryRoundTrip(t *testing.T) {
	e := entry("unit-x", core.ActionShare, 123456)
	e.Tuple.Action.RequiredByRegulation = true
	e.PolicySnapshot = []byte("snap")
	got, err := unmarshalEntry(marshalEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != e.Tuple || got.Query != e.Query ||
		string(got.Response) != string(e.Response) ||
		string(got.PolicySnapshot) != string(e.PolicySnapshot) {
		t.Fatalf("round trip = %+v, want %+v", got, e)
	}
	if _, err := unmarshalEntry([]byte{1, 2}); err == nil {
		t.Fatal("truncated entry unmarshalled")
	}
}

func TestSizeOrdering(t *testing.T) {
	// For identical entries: CSV (no responses) < query logger (full
	// responses) < encrypted logger with snapshots (cipher overhead).
	csv := NewCSVLogger(false)
	q := NewQueryLogger()
	enc := encLogger(t)
	for i := 0; i < 100; i++ {
		e := entry(core.UnitID(fmt.Sprintf("u%d", i)), core.ActionRead, core.Time(i))
		e.PolicySnapshot = []byte("policy-snapshot-blob-for-accountability")
		if err := csv.Log(Entry{Tuple: e.Tuple, Query: e.Query}); err != nil {
			t.Fatal(err)
		}
		if err := q.Log(Entry{Tuple: e.Tuple, Query: e.Query, Response: e.Response}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Log(e); err != nil {
			t.Fatal(err)
		}
	}
	if !(csv.SizeBytes() < q.SizeBytes()) {
		t.Fatalf("csv (%d) should be smaller than query log (%d)", csv.SizeBytes(), q.SizeBytes())
	}
	if !(q.SizeBytes() < enc.SizeBytes()) {
		t.Fatalf("query log (%d) should be smaller than encrypted log (%d)", q.SizeBytes(), enc.SizeBytes())
	}
}

func BenchmarkLogCSV(b *testing.B) {
	l := NewCSVLogger(true)
	e := entry("u", core.ActionRead, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Log(e)
	}
}

func BenchmarkLogQuery(b *testing.B) {
	l := NewQueryLogger()
	e := entry("u", core.ActionRead, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Log(e)
	}
}

func BenchmarkLogEncrypted(b *testing.B) {
	key, _ := cryptox.GenerateKey(cryptox.AES128)
	s, _ := cryptox.NewAESGCM(key, nil)
	l := NewEncryptedLogger(s)
	e := entry("u", core.ActionRead, 1)
	e.PolicySnapshot = []byte("policy-snapshot")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Log(e)
	}
}
