package audit

import (
	"sync"
	"sync/atomic"

	"github.com/datacase/datacase/internal/core"
)

// AsyncLogger routes hot-path audit records through a bounded in-memory
// queue drained by one background goroutine, so the inner logger's
// mutex (and its rendering/sealing cost) stops serializing concurrent
// readers. Compliance semantics are preserved by construction:
//
//   - Nothing is ever dropped: a full queue blocks the producer
//     (bounded backpressure), because an audit record that vanishes is
//     a compliance violation, not a performance optimization.
//   - Synchronous records (mutations, regulation-required actions) go
//     through Log, which first waits for every queued record to land —
//     the inner log is always prefix-consistent at synchronous points.
//   - Every inspection (Count, SizeBytes, ContainsUnit, EraseUnit,
//     ReconstructHistory) flushes first, so log erasure on delete
//     (P_SYS) sees all entries of the erased unit, and audits never
//     read a log with records still in flight.
//
// AsyncLogger implements Logger; the compliance layer decides per
// record class which path to use (LogAsync for allowed hot-path reads,
// Log for everything else).
type AsyncLogger struct {
	inner Logger
	depth int

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds enqueued-but-not-yet-logged entries. enqSeq/drainSeq
	// are the enqueue and completed-drain generation counters: a flush
	// waits for drainSeq to reach the enqSeq it observed, i.e. for the
	// records enqueued BEFORE the flush — not for the queue to run dry,
	// which sustained concurrent producers could postpone forever.
	queue    []Entry
	enqSeq   uint64
	drainSeq uint64
	closed   bool
	// err is the first inner-logger failure, surfaced on the next
	// synchronous call (the drainer cannot return it to the producer).
	err error

	flushes  atomic.Uint64
	maxDepth int
}

// DefaultAsyncDepth bounds the queue when the caller does not choose.
const DefaultAsyncDepth = 1024

// AsyncStats snapshots the sink's work counters.
type AsyncStats struct {
	// Enqueued counts records routed through the async path.
	Enqueued uint64
	// Flushes counts synchronous waits for the queue to drain.
	Flushes uint64
	// MaxDepth is the deepest the queue has been.
	MaxDepth int
}

// NewAsync wraps inner with a bounded async sink (depth <= 0 selects
// DefaultAsyncDepth) and starts its drainer.
func NewAsync(inner Logger, depth int) *AsyncLogger {
	if depth <= 0 {
		depth = DefaultAsyncDepth
	}
	a := &AsyncLogger{inner: inner, depth: depth, queue: make([]Entry, 0, depth)}
	a.cond = sync.NewCond(&a.mu)
	go a.drain()
	return a
}

// Inner returns the wrapped logger.
func (a *AsyncLogger) Inner() Logger { return a.inner }

// Name implements Logger: the grounding is the inner logger's.
func (a *AsyncLogger) Name() string { return a.inner.Name() }

// drain is the sink's goroutine: dequeue one entry at a time, write it
// to the inner logger, and advance the drain generation so flushers
// waiting on it make progress even while producers keep enqueueing.
func (a *AsyncLogger) drain() {
	for {
		a.mu.Lock()
		for len(a.queue) == 0 && !a.closed {
			a.cond.Wait()
		}
		if len(a.queue) == 0 && a.closed {
			a.mu.Unlock()
			return
		}
		e := a.queue[0]
		a.queue = a.queue[1:]
		if len(a.queue) == 0 {
			// Recycle the backing array so repeated slicing cannot grow
			// it without bound across bursts.
			a.queue = make([]Entry, 0, a.depth)
		}
		a.mu.Unlock()

		err := a.inner.Log(e)

		a.mu.Lock()
		a.drainSeq++
		if err != nil && a.err == nil {
			a.err = err
		}
		a.cond.Broadcast()
		a.mu.Unlock()
	}
}

// LogAsync enqueues a hot-path record. It blocks only when the queue is
// at capacity (backpressure) and never drops. The entry's payload
// slices are copied: the caller may hand the response buffer to its own
// caller, which must not mutate a record already in the audit pipeline.
func (a *AsyncLogger) LogAsync(e Entry) {
	e.Response = append([]byte(nil), e.Response...)
	e.PolicySnapshot = append([]byte(nil), e.PolicySnapshot...)
	a.mu.Lock()
	for len(a.queue) >= a.depth && !a.closed {
		a.cond.Wait()
	}
	if a.closed {
		// A closed sink degrades to synchronous logging rather than
		// losing the record.
		a.mu.Unlock()
		if err := a.inner.Log(e); err != nil {
			a.noteErr(err)
		}
		return
	}
	a.queue = append(a.queue, e)
	if d := len(a.queue); d > a.maxDepth {
		a.maxDepth = d
	}
	a.enqSeq++
	a.cond.Broadcast()
	a.mu.Unlock()
}

func (a *AsyncLogger) noteErr(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
}

// Flush blocks until every record enqueued BEFORE the call has landed
// in the inner logger, and returns the first deferred drain error, if
// any. Records enqueued by concurrent producers after the flush began
// are not waited for — a flush under sustained read traffic completes
// instead of chasing an ever-refilling queue.
func (a *AsyncLogger) Flush() error {
	a.flushes.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	target := a.enqSeq
	for a.drainSeq < target {
		a.cond.Wait()
	}
	return a.err
}

// Close flushes everything and stops the drainer. The logger remains
// usable: later records are written synchronously.
func (a *AsyncLogger) Close() error {
	a.mu.Lock()
	a.closed = true
	a.cond.Broadcast()
	// No producer can enqueue past closed, so waiting for empty
	// terminates.
	for a.drainSeq < a.enqSeq {
		a.cond.Wait()
	}
	err := a.err
	a.mu.Unlock()
	return err
}

// Stats snapshots the sink's counters.
func (a *AsyncLogger) Stats() AsyncStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AsyncStats{
		Enqueued: a.enqSeq,
		Flushes:  a.flushes.Load(),
		MaxDepth: a.maxDepth,
	}
}

// Log implements Logger: the synchronous class. The queue drains first,
// so the inner log is prefix-consistent — a mutation's record never
// precedes a read record that was enqueued before it.
func (a *AsyncLogger) Log(e Entry) error {
	if err := a.Flush(); err != nil {
		return err
	}
	return a.inner.Log(e)
}

// Count implements Logger (flushes first).
func (a *AsyncLogger) Count() int {
	_ = a.Flush()
	return a.inner.Count()
}

// SizeBytes implements Logger (flushes first).
func (a *AsyncLogger) SizeBytes() int64 {
	_ = a.Flush()
	return a.inner.SizeBytes()
}

// ContainsUnit implements Logger (flushes first).
func (a *AsyncLogger) ContainsUnit(unit core.UnitID) bool {
	_ = a.Flush()
	return a.inner.ContainsUnit(unit)
}

// EraseUnit implements Logger: the flush is load-bearing — erasing a
// unit's entries while some are still queued would let them land after
// the erasure and resurrect the erased unit in the log.
func (a *AsyncLogger) EraseUnit(unit core.UnitID) (int, error) {
	if err := a.Flush(); err != nil {
		return 0, err
	}
	return a.inner.EraseUnit(unit)
}

// ReconstructHistory implements Logger (flushes first).
func (a *AsyncLogger) ReconstructHistory() (*core.History, error) {
	if err := a.Flush(); err != nil {
		return nil, err
	}
	return a.inner.ReconstructHistory()
}
