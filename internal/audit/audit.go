// Package audit implements the action-history persistence layer: the
// "histories" concept of Data-CASE grounded three different ways, one
// per compliance profile (§4.2 of the paper):
//
//   - CSVLogger (P_Base): PostgreSQL-style native CSV logging with
//     row-level records of query responses.
//   - QueryLogger (P_GBench): logs all queries and responses as
//     structured records (no CSV).
//   - EncryptedLogger (P_SYS): AES-sealed log entries including policy
//     snapshots, with support for erasing the entries of a data unit
//     (strong/permanent erasure must scrub logs too, §3.2).
//
// Every logger can reconstruct a core.History, which is what the
// compliance checker audits.
package audit

import (
	"errors"

	"github.com/datacase/datacase/internal/core"
)

// Entry is one audit record: the action-history tuple plus whatever the
// grounding says must be recorded with it.
type Entry struct {
	Tuple core.HistoryTuple
	// Query is the operation text (engines fill it; may be empty).
	Query string
	// Response is the operation's result payload, when the grounding
	// logs responses.
	Response []byte
	// PolicySnapshot serializes the policies in force at the time of the
	// action, when the grounding demands demonstrable accountability.
	PolicySnapshot []byte
}

// ErrEraseUnsupported is returned by loggers that cannot erase a unit's
// entries (a grounding gap the profile must account for).
var ErrEraseUnsupported = errors.New("audit: logger cannot erase per-unit entries")

// Logger persists audit entries. Implementations are safe for
// concurrent use.
type Logger interface {
	// Name identifies the grounding ("csv", "query", "encrypted").
	Name() string
	// Log appends an entry.
	Log(e Entry) error
	// Count returns the number of live entries.
	Count() int
	// SizeBytes is the log's storage footprint (Table 2 metadata).
	SizeBytes() int64
	// ContainsUnit reports whether live entries reference the unit.
	ContainsUnit(unit core.UnitID) bool
	// EraseUnit removes the unit's entries, returning how many were
	// removed, or ErrEraseUnsupported.
	EraseUnit(unit core.UnitID) (int, error)
	// ReconstructHistory rebuilds the action-history from the log.
	ReconstructHistory() (*core.History, error)
}
