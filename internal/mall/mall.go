// Package mall generates the synthetic personal-data payloads the paper
// uses to enrich GDPRBench records: "simulated data generated from
// personal devices in a shopping complex", each record carrying a
// personal-data id and a recorded date/time in the style of the
// SmartBench simulator [35]. The generator is deterministic for a given
// seed.
package mall

import (
	"fmt"
	"math/rand"
)

// Observation is one device sighting in the shopping complex.
type Observation struct {
	// DeviceID is the personal device observed (ties to a person).
	DeviceID string
	// PersonID is the data subject carrying the device.
	PersonID string
	// SensorID is the observing sensor (WiFi AP / camera / beacon).
	SensorID string
	// Store is the shop or zone where the observation happened.
	Store string
	// At is the observation time (seconds since the epoch of the run).
	At int64
	// DwellSeconds is how long the device stayed in range.
	DwellSeconds int
}

// Encode renders the observation as a compact record payload.
func (o Observation) Encode() []byte {
	return []byte(fmt.Sprintf("%s|%s|%s|%s|%d|%d",
		o.DeviceID, o.PersonID, o.SensorID, o.Store, o.At, o.DwellSeconds))
}

var storeNames = []string{
	"food-court", "electronics", "apparel", "grocery", "pharmacy",
	"bookstore", "cinema", "parking-a", "parking-b", "atrium",
}

// Generator produces deterministic observations.
type Generator struct {
	rng     *rand.Rand
	persons int
	sensors int
	now     int64
}

// NewGenerator returns a generator over the given population. persons
// and sensors must be positive.
func NewGenerator(seed int64, persons, sensors int) (*Generator, error) {
	if persons <= 0 || sensors <= 0 {
		return nil, fmt.Errorf("mall: persons and sensors must be positive")
	}
	return &Generator{
		rng:     rand.New(rand.NewSource(seed)),
		persons: persons,
		sensors: sensors,
	}, nil
}

// Next returns the next observation. Time advances by 1-30 seconds per
// observation, so a run covers a realistic visit timeline.
func (g *Generator) Next() Observation {
	g.now += int64(g.rng.Intn(30) + 1)
	person := g.rng.Intn(g.persons)
	return Observation{
		DeviceID:     fmt.Sprintf("dev-%05d", person), // one device per person
		PersonID:     fmt.Sprintf("person-%05d", person),
		SensorID:     fmt.Sprintf("sensor-%03d", g.rng.Intn(g.sensors)),
		Store:        storeNames[g.rng.Intn(len(storeNames))],
		At:           g.now,
		DwellSeconds: g.rng.Intn(600),
	}
}

// PayloadFor returns a deterministic observation payload for a specific
// person (used when each benchmark record must belong to one subject).
func (g *Generator) PayloadFor(person int) []byte {
	g.now += int64(g.rng.Intn(30) + 1)
	o := Observation{
		DeviceID:     fmt.Sprintf("dev-%05d", person),
		PersonID:     fmt.Sprintf("person-%05d", person),
		SensorID:     fmt.Sprintf("sensor-%03d", g.rng.Intn(g.sensors)),
		Store:        storeNames[g.rng.Intn(len(storeNames))],
		At:           g.now,
		DwellSeconds: g.rng.Intn(600),
	}
	return o.Encode()
}
