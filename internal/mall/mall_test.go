package mall

import (
	"bytes"
	"strings"
	"testing"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1, 0, 5); err == nil {
		t.Fatal("zero persons accepted")
	}
	if _, err := NewGenerator(1, 5, 0); err == nil {
		t.Fatal("zero sensors accepted")
	}
}

func TestNextAdvancesTime(t *testing.T) {
	g, err := NewGenerator(42, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for i := 0; i < 1000; i++ {
		o := g.Next()
		if o.At <= prev {
			t.Fatalf("time did not advance: %d then %d", prev, o.At)
		}
		prev = o.At
		if o.DeviceID == "" || o.PersonID == "" || o.SensorID == "" || o.Store == "" {
			t.Fatalf("incomplete observation: %+v", o)
		}
		if o.DwellSeconds < 0 || o.DwellSeconds >= 600 {
			t.Fatalf("dwell out of range: %d", o.DwellSeconds)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := NewGenerator(7, 50, 4)
	g2, _ := NewGenerator(7, 50, 4)
	for i := 0; i < 200; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("not deterministic at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestEncodeFields(t *testing.T) {
	o := Observation{
		DeviceID: "dev-00001", PersonID: "person-00001",
		SensorID: "sensor-003", Store: "atrium", At: 99, DwellSeconds: 42,
	}
	enc := string(o.Encode())
	parts := strings.Split(enc, "|")
	if len(parts) != 6 {
		t.Fatalf("encoded fields = %d: %q", len(parts), enc)
	}
	if parts[0] != "dev-00001" || parts[3] != "atrium" || parts[5] != "42" {
		t.Fatalf("encoded = %q", enc)
	}
}

func TestPayloadForTiesToPerson(t *testing.T) {
	g, _ := NewGenerator(1, 100, 4)
	p := g.PayloadFor(7)
	if !bytes.Contains(p, []byte("person-00007")) || !bytes.Contains(p, []byte("dev-00007")) {
		t.Fatalf("payload does not identify person 7: %q", p)
	}
}

func TestPersonAndSensorRanges(t *testing.T) {
	g, _ := NewGenerator(3, 10, 2)
	seenPersons := map[string]bool{}
	for i := 0; i < 500; i++ {
		o := g.Next()
		seenPersons[o.PersonID] = true
		if !strings.HasPrefix(o.SensorID, "sensor-00") {
			t.Fatalf("sensor out of range: %s", o.SensorID)
		}
	}
	if len(seenPersons) != 10 {
		t.Fatalf("saw %d persons, want all 10", len(seenPersons))
	}
}
