module github.com/datacase/datacase

go 1.21
