// Multinational organizations (§4.3 of the paper): an organization
// subject to several regulations grounds the same concept differently
// per jurisdiction, and uses Data-CASE to make the mapping transparent —
// which interpretation each region runs, with which system-actions, and
// what that implies for data geo-location.
package main

import (
	"fmt"
	"log"

	"github.com/datacase/datacase"
)

// jurisdiction describes one regional deployment.
type jurisdiction struct {
	name       string
	regulation string
	// strictest erasure interpretation the regulation demands.
	erasure datacase.ErasureInterpretation
	// retention horizon the regulation allows (logical ticks).
	retention datacase.Time
}

func main() {
	regions := []jurisdiction{
		{"EU", "GDPR", datacase.EraseStrongDelete, 1000},
		{"California", "CCPA", datacase.EraseDelete, 2000},
		{"Virginia", "VDPA", datacase.EraseDelete, 2500},
		{"Canada", "PIPEDA", datacase.EraseReversiblyInaccessible, 3000},
	}

	fmt.Println("per-jurisdiction groundings of the erasure concept:")
	registries := make(map[string]*datacase.GroundingRegistry)
	for _, r := range regions {
		reg := datacase.NewGroundingRegistry(r.name + " deployment (" + r.regulation + ")")
		if err := datacase.DeclareErasureInterpretations(reg); err != nil {
			log.Fatal(err)
		}
		actions := systemActionsFor(r.erasure)
		if err := reg.Choose("erasure", r.erasure.String(), actions...); err != nil {
			log.Fatal(err)
		}
		registries[r.name] = reg
		g, _ := reg.Chosen("erasure")
		fmt.Printf("  %-11s %-7s erasure=%-26s actions=%v\n",
			r.name, r.regulation, g.Interpretation.Name, g.Actions)
	}

	// Strictness reasoning: a single global deployment must satisfy the
	// strictest jurisdiction it serves — or geo-partition the data.
	strictest := regions[0]
	for _, r := range regions[1:] {
		if r.erasure.StricterThan(strictest.erasure) {
			strictest = r
		}
	}
	fmt.Printf("\na single global store must run %q erasure (%s's requirement),\n",
		strictest.erasure, strictest.name)
	fmt.Println("because achieving a stricter interpretation achieves all weaker ones:")
	for _, r := range regions {
		fmt.Printf("  %s-compliant via %s? %v\n",
			r.regulation, strictest.erasure, strictest.erasure.Implies(r.erasure))
	}

	// Cost consequence of the decision (the paper: "help make decisions
	// such as data geo-location ... and the consequences on services").
	fmt.Println("\ncost of running every region at the strictest grounding vs geo-partitioned:")
	strictRun, err := datacase.RunEraseStrategy(datacase.StratVacuumFull, 4000, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	relaxedRun, err := datacase.RunEraseStrategy(datacase.StratVacuum, 4000, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  global strictest (%s): %v\n", datacase.StratVacuumFull, strictRun.Elapsed)
	fmt.Printf("  geo-partitioned EU-only strict, rest relaxed (%s): %v\n",
		datacase.StratVacuum, relaxedRun.Elapsed)

	// Retention: the earliest deadline wins globally.
	earliest := regions[0]
	for _, r := range regions[1:] {
		if r.retention < earliest.retention {
			earliest = r
		}
	}
	fmt.Printf("\nglobal retention deadline: %s (%s), the earliest across jurisdictions\n",
		earliest.retention, earliest.name)
}

func systemActionsFor(e datacase.ErasureInterpretation) []datacase.SystemAction {
	switch e {
	case datacase.EraseReversiblyInaccessible:
		return []datacase.SystemAction{{System: "psql-like-heap", Operation: "Add new attribute", Supported: true}}
	case datacase.EraseDelete:
		return []datacase.SystemAction{{System: "psql-like-heap", Operation: "DELETE+VACUUM", Supported: true}}
	case datacase.EraseStrongDelete:
		return []datacase.SystemAction{
			{System: "psql-like-heap", Operation: "DELETE+VACUUM FULL", Supported: true},
			{System: "audit", Operation: "erase unit log entries", Supported: true},
			{System: "provenance", Operation: "delete identifiable dependents", Supported: true},
		}
	default:
		return []datacase.SystemAction{{System: "psql-like-heap", Operation: "sanitize", Supported: false}}
	}
}
