// Privacy Impact Assessment (§4.4 of the paper): GDPR Art. 35 requires
// controllers to assess risks before processing. Data-CASE supports the
// assessment by exposing, for each step of the processing pipeline, the
// grounded concept, the system-actions implementing it, and their
// properties — so risks (illegal reads, illegal inference, invertible
// transformations, unsupported groundings) are identified before
// deployment, and mitigations are concrete (choose a stricter
// interpretation, retrofit a system-action).
package main

import (
	"fmt"
	"log"

	"github.com/datacase/datacase"
)

// pipelineStep is one stage of the planned processing pipeline.
type pipelineStep struct {
	name    string
	concept datacase.Concept
	chosen  string
	actions []datacase.SystemAction
}

func main() {
	fmt.Println("Privacy Impact Assessment for: MetaSpace smart-space analytics")
	fmt.Println("(planned processing: collect device observations, derive movement")
	fmt.Println(" profiles, serve ads; erase on request)")
	fmt.Println()

	// Step 1: enumerate the pipeline with the proposed groundings.
	steps := []pipelineStep{
		{
			name: "collection+consent", concept: "consent", chosen: "policy-grant",
			actions: []datacase.SystemAction{{System: "policy-engine", Operation: "attach ⟨purpose,entity,window⟩", Supported: true}},
		},
		{
			name: "storage", concept: "policy", chosen: "fgac",
			actions: []datacase.SystemAction{{System: "sieve", Operation: "guarded per-unit policies", Supported: true}},
		},
		{
			name: "derivation", concept: "history", chosen: "query-log",
			actions: []datacase.SystemAction{{System: "audit", Operation: "log derive + provenance edge", Supported: true}},
		},
		{
			name: "erasure", concept: "erasure", chosen: "delete",
			actions: []datacase.SystemAction{{System: "psql-like-heap", Operation: "DELETE+VACUUM", Supported: true}},
		},
	}
	reg := datacase.NewGroundingRegistry("PIA: proposed deployment")
	if err := datacase.DeclareErasureInterpretations(reg); err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		if s.concept == "erasure" {
			continue // declared above with the full lattice
		}
		if err := reg.Declare(datacase.Interpretation{Concept: s.concept, Name: s.chosen}); err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range steps {
		if err := reg.Choose(s.concept, s.chosen, s.actions...); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %-20s concept=%-8s grounding=%-12s actions=%v\n",
			s.name, s.concept, s.chosen, s.actions)
	}

	// Step 2: risk identification — measure the proposed erasure
	// grounding's properties on a live scenario (Table 1 machinery).
	fmt.Println("\nrisk assessment of the proposed erasure grounding (\"delete\"):")
	rows, err := datacase.Table1()
	if err != nil {
		log.Fatal(err)
	}
	var deleteRow, strongRow datacase.Table1Row
	for _, r := range rows {
		switch r.Interpretation {
		case datacase.EraseDelete:
			deleteRow = r
		case datacase.EraseStrongDelete:
			strongRow = r
		}
	}
	fmt.Printf("  measured: IR=%v II=%v Inv=%v\n",
		deleteRow.Measured.IllegalReads,
		deleteRow.Measured.IllegalInference,
		deleteRow.Measured.Invertible)
	if deleteRow.Measured.IllegalInference {
		fmt.Println("  RISK: derived movement profiles survive erasure — the subject")
		fmt.Println("        remains identifiable via invertible derivations (II=✓).")
		fmt.Println("        Evidence:")
		for _, e := range deleteRow.Measured.Evidence {
			fmt.Printf("          - %s\n", e)
		}
	}

	// Step 3: mitigation — re-ground erasure strictly enough to remove
	// the identified risk, and show the residual properties.
	fmt.Println("\nmitigation: re-ground erasure as \"strong-delete\":")
	fmt.Printf("  measured after strong delete: IR=%v II=%v Inv=%v (conforms=%v)\n",
		strongRow.Measured.IllegalReads,
		strongRow.Measured.IllegalInference,
		strongRow.Measured.Invertible,
		strongRow.Conforms)
	if err := reg.Choose("erasure", datacase.EraseStrongDelete.String(),
		datacase.SystemAction{System: "psql-like-heap", Operation: "DELETE+VACUUM FULL", Supported: true},
		datacase.SystemAction{System: "provenance", Operation: "delete identifiable dependents", Supported: true},
		datacase.SystemAction{System: "audit", Operation: "erase unit log entries", Supported: true},
	); err != nil {
		log.Fatal(err)
	}

	// Step 4: sign-off — the deployment is fully grounded, so the PIA
	// can state exactly which interpretation of the regulation it meets.
	if ok, missing := reg.FullyGrounded(); ok {
		fmt.Println("\nPIA conclusion: deployment fully grounded; residual risk documented.")
	} else {
		fmt.Printf("\nPIA conclusion: NOT deployable; ungrounded concepts: %v\n", missing)
	}
}
