// MetaSpace (Case Study 1, §4.1 of the paper): a service provider wants
// strong erasure semantics for GDPR Art. 17 and uses Data-CASE to (a)
// ground the four interpretations of erasure, (b) map them to the
// system-actions its PSQL-like engine supports, and (c) benchmark their
// cost on the customer workload (20% deletes, rest reads) before
// choosing one.
package main

import (
	"fmt"
	"log"

	"github.com/datacase/datacase"
)

func main() {
	// Step 1: ground the erasure concept — declare every interpretation
	// and inspect the declared characteristics (Table 1).
	reg := datacase.NewGroundingRegistry("MetaSpace on psql-like-heap")
	if err := datacase.DeclareErasureInterpretations(reg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidate interpretations of erasure:")
	for _, i := range reg.Declared("erasure") {
		fmt.Printf("  strictness=%d %-26s %s\n", i.Strictness, i.Name, i.Description)
	}

	// Step 2: verify each grounding on a live system (measured Table 1).
	rows, err := datacase.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(datacase.RenderTable1(rows))

	// Step 3: benchmark the associated system-action costs on the
	// customer workload (Figure 4(a), reduced scale).
	const records, txns = 8000, 12000
	fmt.Printf("cost on WCus (%d records, %d txns):\n", records, txns)
	for _, strat := range datacase.EraseStrategies() {
		r, err := datacase.RunEraseStrategy(strat, records, txns, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %v\n", strat, r.Elapsed)
	}

	// Step 4: choose. MetaSpace wants strong semantics at acceptable
	// cost: it picks "delete" grounded as DELETE+VACUUM and records the
	// choice, making the interpretation demonstrable.
	err = reg.Choose("erasure", datacase.EraseDelete.String(),
		datacase.SystemAction{System: "psql-like-heap", Operation: "DELETE+VACUUM", Supported: true})
	if err != nil {
		log.Fatal(err)
	}
	g, _ := reg.Chosen("erasure")
	fmt.Printf("\nchosen grounding: %s -> %v (supported=%v)\n",
		g.Interpretation, g.Actions, g.Supported())
}
