// Retention and breach handling: the operational side of compliance.
// A deployment collects records with TTLs, the retention sweeper erases
// them as they expire (G17's enforcement half), a breach is detected and
// notified within the deadline (G33/34), and the audit demonstrates the
// result — including what the audit says when the sweeper is NOT run.
package main

import (
	"fmt"
	"log"

	"github.com/datacase/datacase"
)

func main() {
	profile := datacase.PSYS()
	profile.TrackModel = true
	db, err := datacase.OpenProfile(profile)
	if err != nil {
		log.Fatal(err)
	}

	// Collect records with staggered retention deadlines.
	for i := 0; i < 10; i++ {
		ttl := int64(50)
		if i%2 == 0 {
			ttl = 1 << 30 // long-lived
		}
		if err := db.Create(datacase.Record{
			Key:        fmt.Sprintf("user%02d", i),
			Subject:    fmt.Sprintf("person-%02d", i),
			Payload:    []byte(fmt.Sprintf("observation-%d", i)),
			Purposes:   []string{"billing"},
			TTL:        ttl,
			Processors: []string{"processor-a"},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collected %d records (half with TTL=50)\n", db.Len())

	// Time passes; the short TTLs expire.
	db.AdvanceClock(100)

	// Without the sweeper, the audit finds the overdue records.
	report, err := db.Audit(datacase.DefaultGDPRInvariants())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit BEFORE sweeping: compliant=%v (%d violations)\n",
		report.Compliant(), len(report.Violations))

	// The sweeper erases them under the profile's grounding (P_SYS:
	// DELETE+VACUUM FULL, log erasure, dependent cascade).
	sweep, err := db.SweepExpired()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: scanned=%d erased=%d\n", sweep.Scanned, sweep.Erased)
	fmt.Printf("records remaining: %d\n", db.Len())

	// A breach is detected and notified within the 72-tick window.
	if err := db.RecordBreach("incident-2026-001", []string{"user00", "user02"}); err != nil {
		log.Fatal(err)
	}
	if err := db.NotifyBreach("incident-2026-001"); err != nil {
		log.Fatal(err)
	}

	report, err = db.AuditWithBreaches(datacase.DefaultGDPRInvariants())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit AFTER sweep + breach notification (incl. G33):\n")
	// The swept records were erased after their deadline (the sweep ran
	// late on purpose here); show what survives.
	g17 := 0
	for _, v := range report.Violations {
		if v.Invariant == "G17" {
			g17++
		}
	}
	fmt.Printf("  residual G17 findings (late erasures, as a regulator would see): %d\n", g17)
	fmt.Printf("  breach notification (G33) clean: %v\n", func() bool {
		for _, v := range report.Violations {
			if v.Invariant == "G33" {
				return false
			}
		}
		return true
	}())
}
