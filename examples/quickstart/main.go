// Quickstart: the Data-CASE model end to end — entities, a data unit
// with policies (the paper's Netflix credit-card running example),
// actions recorded as an action-history, policy-consistency auditing,
// and the G6/G17 invariants.
package main

import (
	"fmt"
	"log"

	"github.com/datacase/datacase"
)

func main() {
	var clock datacase.Clock

	// Entities: user 1234 (data subject), Netflix (controller), AWS
	// (processor), and the erasure executor.
	entities := datacase.NewEntityRegistry()
	for _, e := range []datacase.Entity{
		{ID: "user-1234", Role: datacase.RoleDataSubject, Jurisdiction: "EU"},
		{ID: "netflix", Role: datacase.RoleController, Jurisdiction: "EU"},
		{ID: "aws", Role: datacase.RoleProcessor, Jurisdiction: "EU"},
		{ID: "system", Role: datacase.RoleAuditor},
	} {
		if err := entities.Register(e); err != nil {
			log.Fatal(err)
		}
	}

	// The data unit X = (S, O, V, P): the user's credit card.
	db := datacase.NewDatabase()
	cc := datacase.NewDataUnit("cc-1234", datacase.KindBase, "user-1234", "signup-form")
	now := clock.Tick()
	cc.SetValue([]byte("4111-1111-1111-1111"), now)
	// π1: Netflix may bill until t=1000. π2: AWS may retain until t=1000.
	// And the regulation requires erasure by t=1000.
	for _, p := range []datacase.Policy{
		{Purpose: "billing", Entity: "netflix", Begin: now, End: 1000},
		{Purpose: datacase.PurposeRetention, Entity: "aws", Begin: now, End: 1000},
		{Purpose: datacase.PurposeComplianceErase, Entity: "system", Begin: now, End: 1000},
	} {
		if err := cc.Grant(p, now); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Add(cc); err != nil {
		log.Fatal(err)
	}

	// Actions become action-history tuples (X, p, e, τ(X), t).
	history := datacase.NewHistory()
	history.MustAppend(datacase.HistoryTuple{
		Unit: "cc-1234", Purpose: "billing", Entity: "netflix",
		Action: datacase.Action{Kind: datacase.ActionRead, SystemAction: "SELECT"},
		At:     clock.Tick(),
	})
	// An advertiser reads the card without any policy — unlawful.
	history.MustAppend(datacase.HistoryTuple{
		Unit: "cc-1234", Purpose: "ads", Entity: "broker",
		Action: datacase.Action{Kind: datacase.ActionRead, SystemAction: "SELECT"},
		At:     clock.Tick(),
	})

	// Policy-consistency audit (the model of GDPR Art. 6).
	fmt.Println("policy-consistency audit of H(cc-1234):")
	for _, inc := range datacase.AuditUnit(cc, history, datacase.NewPurposeRegistry()) {
		fmt.Printf("  VIOLATION %s\n", inc)
	}

	// Invariant checking: G6 + G17 + the Figure-1 categories.
	ctx := &datacase.CheckContext{
		DB: db, History: history,
		Purposes: datacase.NewPurposeRegistry(), Now: clock.Now(),
	}
	fmt.Println("\ninvariant check (G6, G17, ...):")
	for _, v := range datacase.DefaultGDPRInvariants().CheckAll(ctx) {
		fmt.Printf("  %s\n", v)
	}

	// Erasure interpretations and their Table-1 characteristics.
	fmt.Println("\nerasure interpretations (Table 1, declared):")
	for _, interp := range datacase.ErasureInterpretations() {
		c := datacase.CharacteristicsOf(interp)
		fmt.Printf("  %-26s IR=%-5v II=%-5v Inv=%-5v via %s\n",
			interp, c.IllegalReads, c.IllegalInference, c.Invertible,
			datacase.PSQLSystemActions(interp))
	}
}
