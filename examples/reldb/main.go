// RelDB (Case Study 2, §4.2 of the paper): a database provider compares
// three grounded interpretations of GDPR compliance — P_Base, P_GBench,
// P_SYS — by running the GDPRBench workloads against each, measuring
// completion time and storage overhead, and auditing the runs against
// the Data-CASE invariants.
package main

import (
	"fmt"
	"log"

	"github.com/datacase/datacase"
)

func main() {
	const records, txns = 4000, 2000

	fmt.Printf("RelDB: comparing compliance groundings (%d records, %d txns)\n\n", records, txns)

	// Completion time per profile per workload (Figure 4(b), reduced).
	workloads := []datacase.GDPRWorkload{datacase.WPro, datacase.WCon, datacase.WCus}
	for _, p := range datacase.Profiles() {
		fmt.Printf("%-9s (%s)\n", p.Name, p.Description)
		for _, w := range workloads {
			r, err := datacase.RunGDPRBench(p, w, records, txns, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-7s completion=%v\n", w, r.Elapsed)
		}
		ry, err := datacase.RunYCSB(p, datacase.YCSBC, records, txns, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s completion=%v (non-GDPR baseline)\n\n", "YCSB-C", ry.Elapsed)
	}

	// Storage overhead (Table 2, reduced).
	fmt.Println("storage space overhead (Table 2):")
	reports, err := datacase.Table2(datacase.Scale{Records: records, Txns: txns, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("  %s\n", r)
	}

	// Demonstrable compliance: audit a tracked run of the strictest
	// profile against the invariants.
	fmt.Println("\ncompliance audit of a tracked P_SYS run:")
	profile := datacase.PSYS()
	profile.TrackModel = true
	db, err := datacase.OpenProfile(profile)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		rec := datacase.Record{
			Key:        fmt.Sprintf("user%08d", i),
			Subject:    fmt.Sprintf("person-%05d", i),
			Payload:    []byte(fmt.Sprintf("obs-%d", i)),
			Purposes:   []string{"billing", "analytics"},
			TTL:        1 << 30,
			Processors: []string{"processor-a"},
		}
		if err := db.Create(rec); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("user%08d", i%200)
		if _, err := db.ReadData(datacase.EntityController, datacase.PurposeService, key); err != nil {
			log.Fatal(err)
		}
	}
	report, err := db.Audit(datacase.DefaultGDPRInvariants())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)
}
