// Conformance suite of the transport-neutral Client API: every test
// here runs twice, once against the in-process adapter over a
// ShardedDB and once against a real client → gateway → server loopback
// over TCP. A Client user must not be able to tell the transports
// apart — same results, same sentinels, same invariants.
package datacase_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datacase/datacase"
)

// clientEnv is one deployment reachable through the Client interface.
// dial opens an additional independent connection to the same
// deployment (for the wire flavor a fresh TCP connection; for the
// local flavor the adapter itself, which is already safe for
// concurrent use).
type clientEnv struct {
	c    datacase.Client
	dial func(t *testing.T) datacase.Client
}

// clientProfile is the serving profile of the conformance deployments:
// consent revocation needs the fine-grained policy engine, audits need
// the model view.
func clientProfile() datacase.Profile {
	p := datacase.PSYS()
	p.TrackModel = true
	return p
}

func newLocalEnv(t *testing.T) *clientEnv {
	t.Helper()
	db, err := datacase.OpenSharded(clientProfile(), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	local := datacase.NewLocalClient(db)
	return &clientEnv{
		c:    local,
		dial: func(*testing.T) datacase.Client { return local },
	}
}

func newWireEnv(t *testing.T) *clientEnv {
	t.Helper()
	var addrs []string
	for i := 0; i < 2; i++ {
		db, err := datacase.OpenSharded(clientProfile(), 2)
		if err != nil {
			t.Fatal(err)
		}
		srv := datacase.NewServer(datacase.NewLocalClient(db))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, srv.Addr())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			db.Close()
		})
	}
	gw, err := datacase.NewGateway(1, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
	})
	dial := func(t *testing.T) datacase.Client {
		t.Helper()
		c, err := datacase.Dial(gw.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return &clientEnv{c: dial(t), dial: dial}
}

// clientFlavors enumerates the transports under conformance test.
var clientFlavors = []struct {
	name string
	env  func(t *testing.T) *clientEnv
}{
	{"local", newLocalEnv},
	{"wire", newWireEnv},
}

func eachClient(t *testing.T, test func(t *testing.T, env *clientEnv)) {
	for _, flavor := range clientFlavors {
		t.Run(flavor.name, func(t *testing.T) {
			test(t, flavor.env(t))
		})
	}
}

func TestClientConformanceOpCycle(t *testing.T) {
	eachClient(t, func(t *testing.T, env *clientEnv) {
		ctx := context.Background()
		rec := apiRecord("cycle1", "alice")
		if _, err := env.c.Create(ctx, datacase.CreateRequest{Record: rec}); err != nil {
			t.Fatal(err)
		}
		if _, err := env.c.Create(ctx, datacase.CreateRequest{Record: rec}); !errors.Is(err, datacase.ErrExists) {
			t.Fatalf("duplicate create: %v", err)
		}
		read, err := env.c.ReadData(ctx, datacase.ReadDataRequest{
			Key: "cycle1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
		})
		if err != nil || !bytes.Equal(read.Payload, rec.Payload) {
			t.Fatalf("read = %q, %v", read.Payload, err)
		}
		if _, err := env.c.UpdateData(ctx, datacase.UpdateDataRequest{
			Key: "cycle1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
			Payload: []byte("obs|alice|v2"),
		}); err != nil {
			t.Fatal(err)
		}
		meta, err := env.c.ReadMeta(ctx, datacase.ReadMetaRequest{
			Key: "cycle1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
		})
		if err != nil || meta.Meta.Subject != "alice" {
			t.Fatalf("meta = %+v, %v", meta, err)
		}
		scan, err := env.c.ReadByMeta(ctx, datacase.ReadByMetaRequest{
			Entity: datacase.EntityController, Purpose: datacase.PurposeService,
			MetaPurpose: "billing", Limit: 10,
		})
		if err != nil || scan.Matched != 1 {
			t.Fatalf("scan = %+v, %v", scan, err)
		}
		sar, err := env.c.SubjectAccess(ctx, datacase.SubjectAccessRequest{Subject: "alice"})
		if err != nil || len(sar.Records) != 1 {
			t.Fatalf("SAR = %d, %v", len(sar.Records), err)
		}
		audit, err := env.c.Audit(ctx, datacase.AuditRequest{})
		if err != nil || audit.Profile != "P_SYS" || !audit.Compliant() {
			t.Fatalf("audit = %+v, %v", audit, err)
		}
		if _, err := env.c.DeleteData(ctx, datacase.DeleteDataRequest{
			Key: "cycle1", Entity: datacase.EntitySubjectSvc,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := env.c.ReadData(ctx, datacase.ReadDataRequest{
			Key: "cycle1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
		}); !errors.Is(err, datacase.ErrNotFound) {
			t.Fatalf("read after delete: %v", err)
		}
	})
}

func TestClientConformanceSentinels(t *testing.T) {
	eachClient(t, func(t *testing.T, env *clientEnv) {
		ctx := context.Background()
		if _, err := env.c.ReadData(ctx, datacase.ReadDataRequest{
			Key: "ghost", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
		}); !errors.Is(err, datacase.ErrNotFound) {
			t.Fatalf("ghost read: %v", err)
		}
		if _, err := env.c.Create(ctx, datacase.CreateRequest{Record: apiRecord("s1", "bob")}); err != nil {
			t.Fatal(err)
		}
		// A processor outside the record's processor list is denied.
		if _, err := env.c.ReadData(ctx, datacase.ReadDataRequest{
			Key: "s1", Entity: "processor-z", Purpose: datacase.PurposeProcessing,
		}); !errors.Is(err, datacase.ErrDenied) {
			t.Fatalf("unlisted processor: %v", err)
		}
		// A cancelled context is the caller's error, not the transport's.
		cancelled, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := env.c.ReadData(cancelled, datacase.ReadDataRequest{
			Key: "s1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
		}); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled read: %v", err)
		}
	})
}

// TestClientConformanceEraseNoZombie is the erasure invariant across
// transports: while readers hammer a subject's keys over independent
// connections, the subject is erased; the moment EraseSubject returns,
// every read of those keys through every connection is not-found.
func TestClientConformanceEraseNoZombie(t *testing.T) {
	eachClient(t, func(t *testing.T, env *clientEnv) {
		ctx := context.Background()
		const keys = 6
		for i := 0; i < keys; i++ {
			rec := apiRecord(fmt.Sprintf("ez-%d", i), "carol")
			if _, err := env.c.Create(ctx, datacase.CreateRequest{Record: rec}); err != nil {
				t.Fatal(err)
			}
		}
		readers := []datacase.Client{env.dial(t), env.dial(t), env.dial(t)}
		stop := make(chan struct{})
		errs := make(chan error, len(readers))
		var wg sync.WaitGroup
		for r, rc := range readers {
			wg.Add(1)
			go func(r int, rc datacase.Client) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_, err := rc.ReadData(ctx, datacase.ReadDataRequest{
						Key:    fmt.Sprintf("ez-%d", (i+r)%keys),
						Entity: datacase.EntityController, Purpose: datacase.PurposeService,
					})
					// Mid-erase a read may succeed or be not-found;
					// nothing else is acceptable.
					if err != nil && !errors.Is(err, datacase.ErrNotFound) {
						errs <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
				}
			}(r, rc)
		}
		erased, err := env.c.EraseSubject(ctx, datacase.EraseSubjectRequest{
			Subject: "carol", Entity: datacase.EntitySystem,
		})
		if err != nil || erased.Erased != keys {
			t.Fatalf("erase = %+v, %v", erased, err)
		}
		// Acknowledged erase: no zombie reads through any connection.
		for r, rc := range readers {
			for i := 0; i < keys; i++ {
				if _, err := rc.ReadData(ctx, datacase.ReadDataRequest{
					Key:    fmt.Sprintf("ez-%d", i),
					Entity: datacase.EntityController, Purpose: datacase.PurposeService,
				}); !errors.Is(err, datacase.ErrNotFound) {
					t.Fatalf("conn %d key ez-%d readable after erase: %v", r, i, err)
				}
			}
		}
		sar, err := env.c.SubjectAccess(ctx, datacase.SubjectAccessRequest{Subject: "carol"})
		if err != nil || len(sar.Records) != 0 {
			t.Fatalf("SAR after erase = %d, %v", len(sar.Records), err)
		}
		close(stop)
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	})
}

// TestClientConformanceRevokeNoStaleAllow is the consent invariant
// across transports: once Revoke returns, no read under the revoked
// (purpose, entity) pair succeeds through any connection — a stale
// allow on another connection would be a compliance breach.
func TestClientConformanceRevokeNoStaleAllow(t *testing.T) {
	eachClient(t, func(t *testing.T, env *clientEnv) {
		ctx := context.Background()
		if _, err := env.c.Create(ctx, datacase.CreateRequest{Record: apiRecord("rv-1", "dave")}); err != nil {
			t.Fatal(err)
		}
		readers := []datacase.Client{env.dial(t), env.dial(t), env.dial(t)}
		stop := make(chan struct{})
		errs := make(chan error, len(readers))
		var wg sync.WaitGroup
		for r, rc := range readers {
			wg.Add(1)
			go func(r int, rc datacase.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_, err := rc.ReadData(ctx, datacase.ReadDataRequest{
						Key: "rv-1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
					})
					// Mid-revocation a read may succeed or be denied;
					// nothing else is acceptable.
					if err != nil && !errors.Is(err, datacase.ErrDenied) {
						errs <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
				}
			}(r, rc)
		}
		if _, err := env.c.Revoke(ctx, datacase.RevokeRequest{
			Key: "rv-1", Purpose: datacase.PurposeService, Entity: datacase.EntityController,
		}); err != nil {
			t.Fatal(err)
		}
		// Acknowledged revocation: denied on every connection, including
		// ones that were reading successfully a moment ago.
		for r, rc := range readers {
			if _, err := rc.ReadData(ctx, datacase.ReadDataRequest{
				Key: "rv-1", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
			}); !errors.Is(err, datacase.ErrDenied) {
				t.Fatalf("conn %d allowed after revoke: %v", r, err)
			}
		}
		close(stop)
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	})
}

// TestClientConformanceDeadline: a deadline set by the caller reaches
// the far side of the transport and comes back as the caller's own
// context error, not a transport failure.
func TestClientConformanceDeadline(t *testing.T) {
	eachClient(t, func(t *testing.T, env *clientEnv) {
		expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		if _, err := env.c.ReadData(expired, datacase.ReadDataRequest{
			Key: "any", Entity: datacase.EntityController, Purpose: datacase.PurposeService,
		}); !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("expired deadline: %v", err)
		}
	})
}
