// Command datacase-audit demonstrates compliance auditing: it runs a
// small GDPR workload on a chosen profile with full model tracking, then
// evaluates the Data-CASE invariants (G6, G17, …) and prints the
// compliance report together with the deployment's groundings.
//
// Usage:
//
//	datacase-audit -profile P_SYS -records 500 -txns 1000
//	datacase-audit -taxonomy          # print the Figure-1 GDPR taxonomy
//	datacase-audit -violate           # inject a deadline violation
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/datacase/datacase"
)

func main() {
	var (
		profileName = flag.String("profile", "P_Base", "profile: P_Base|P_GBench|P_SYS")
		records     = flag.Int("records", 500, "records to load")
		reads       = flag.Int("txns", 1000, "read operations to run")
		taxonomy    = flag.Bool("taxonomy", false, "print the Figure-1 GDPR taxonomy and exit")
		violate     = flag.Bool("violate", false, "inject an erasure-deadline violation")
	)
	flag.Parse()

	if *taxonomy {
		printTaxonomy()
		return
	}

	var profile datacase.Profile
	switch *profileName {
	case "P_Base":
		profile = datacase.PBase()
	case "P_GBench":
		profile = datacase.PGBench()
	case "P_SYS":
		profile = datacase.PSYS()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profileName)
		os.Exit(2)
	}
	profile.TrackModel = true

	db, err := datacase.OpenProfile(profile)
	fail(err)

	// Load records; optionally one with an immediate deadline.
	for i := 0; i < *records; i++ {
		rec := datacase.Record{
			Key:        fmt.Sprintf("user%08d", i),
			Subject:    fmt.Sprintf("person-%05d", i),
			Payload:    []byte(fmt.Sprintf("dev-%05d|obs|%d", i, i)),
			Purposes:   []string{"billing", "analytics"},
			TTL:        1 << 30,
			Processors: []string{"processor-a"},
		}
		if *violate && i == 0 {
			rec.TTL = 1 // the deadline will pass almost immediately
		}
		fail(db.Create(rec))
	}
	for i := 0; i < *reads; i++ {
		key := fmt.Sprintf("user%08d", i%*records)
		if _, err := db.ReadData(datacase.EntityController, datacase.PurposeService, key); err != nil {
			// Expired policies deny; the audit below will explain.
			continue
		}
	}

	report, err := db.Audit(datacase.DefaultGDPRInvariants())
	fail(err)
	fmt.Print(report)

	fmt.Println("\ngroundings:")
	g := report.Groundings
	for _, concept := range g.Concepts() {
		chosen, ok := g.Chosen(concept)
		if !ok {
			fmt.Printf("  %-10s NOT GROUNDED (declared: %d interpretations)\n",
				concept, len(g.Declared(concept)))
			continue
		}
		fmt.Printf("  %-10s -> %-28s actions:", concept, chosen.Interpretation.Name)
		for _, a := range chosen.Actions {
			fmt.Printf(" [%s]", a)
		}
		fmt.Println()
	}
	if !report.Compliant() {
		os.Exit(1)
	}
}

func printTaxonomy() {
	g := datacase.GDPR()
	fmt.Println("Figure 1: GDPR requirements as informal invariants")
	for _, c := range datacase.Categories() {
		fmt.Printf("%-5s %-24s %s\n", c.Numeral()+":", c.String(), c.InformalInvariant())
		for _, a := range g.InCategory(c) {
			fmt.Printf("      - Art. %-3d %s\n", a.Number, a.Title)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-audit:", err)
		os.Exit(1)
	}
}
