// Command datacase-gateway fronts a fleet of datacase-server processes
// with subject-sticky routing: a record's home server is chosen by
// hashing its data subject over the topology, every later request for
// that subject or its keys goes to the same home, and subject-scoped
// operations (subject access, erasure) hit exactly one server while
// scans and audits fan out across all of them. The topology carries an
// epoch so a resize can be announced without rerouting pinned data.
//
// Usage:
//
//	datacase-gateway -addr 127.0.0.1:7000 \
//	    -servers 127.0.0.1:7070,127.0.0.1:7071 -epoch 1
//
// Clients speak the same wire protocol to the gateway as to a server:
// datacase.Dial works against either, and the compliance sentinels
// survive both hops.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/datacase/datacase"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7000", "listen address")
		servers = flag.String("servers", "", "comma-separated datacase-server addresses (required)")
		epoch   = flag.Uint64("epoch", 1, "topology epoch announced by this gateway")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*servers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "datacase-gateway: -servers is required (comma-separated addresses)")
		flag.Usage()
		os.Exit(2)
	}

	gw, err := datacase.NewGateway(*epoch, addrs)
	fail(err)
	fail(gw.Listen(*addr))
	fmt.Printf("datacase-gateway: epoch=%d servers=%v listening on %s\n",
		*epoch, addrs, gw.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("datacase-gateway: %s; draining (budget %v)...\n", s, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "datacase-gateway: drain:", err)
	}
	fmt.Println("datacase-gateway: stopped")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-gateway:", err)
		os.Exit(1)
	}
}
