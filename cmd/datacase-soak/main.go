// Command datacase-soak measures the serving stack end to end: a fleet
// of closed-loop wire connections replays a GDPRBench workload through
// a subject-routing gateway and reports end-to-end latency quantiles
// (p50/p95/p99) and throughput per connection count, as the
// machine-readable BENCH_network.json.
//
// By default it self-hosts the topology in-process — -servers wire
// servers of -shards shards each behind one gateway — so a single
// command produces the full measurement:
//
//	datacase-soak -conns 64,256,1024 -records 2000 -ops 20000
//
// Point it at a running deployment instead with -gateway:
//
//	datacase-soak -gateway 127.0.0.1:7000 -conns 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/datacase/datacase"
)

func main() {
	var (
		gateway  = flag.String("gateway", "", "gateway address (empty = self-host servers+gateway in-process)")
		connsCSV = flag.String("conns", "64,256,1024", "comma-separated connection-count sweep")
		records  = flag.Int("records", 2000, "preloaded records")
		ops      = flag.Int("ops", 4000, "total operations per sweep point")
		servers  = flag.Int("servers", 2, "self-hosted server count")
		shards   = flag.Int("shards", 4, "shards per self-hosted server")
		workload = flag.String("workload", "wcon", "GDPRBench workload: wcon|wpro|wcus")
		seed     = flag.Int64("seed", 1, "workload seed")
		out      = flag.String("out", "BENCH_network.json", "JSON output path")
	)
	flag.Parse()

	w, err := datacase.ParseWorkload(*workload)
	fail(err)
	conns, err := parseConns(*connsCSV)
	fail(err)

	where := fmt.Sprintf("self-hosted %d servers × %d shards", *servers, *shards)
	if *gateway != "" {
		where = "gateway " + *gateway
	}
	fmt.Printf("datacase-soak: %s, workload=%s, records=%d, ops=%d, conns=%v\n",
		where, w, *records, *ops, conns)

	results, err := datacase.NetworkSweep(datacase.NetworkConfig{
		Workload: w, Records: *records, Ops: *ops,
		Servers: *servers, ShardsPerServer: *shards,
		GatewayAddr: *gateway, Seed: *seed,
	}, conns)
	fail(err)
	for _, r := range results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	fail(datacase.WriteNetworkJSON(*out, results))
	if _, err := datacase.ReadNetworkJSON(*out); err != nil {
		fail(fmt.Errorf("written report failed validation: %w", err))
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(results))
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad connection count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty connection sweep %q", s)
	}
	return out, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-soak:", err)
		os.Exit(1)
	}
}
