// Command datacase-server hosts a subject-sharded Data-CASE deployment
// behind the wire protocol: one process, one ShardedDB, one listening
// socket. Clients connect with datacase.Dial (or through a
// datacase-gateway routing a fleet of these servers) and get the full
// compliance surface — create/read/update/delete, subject access,
// erasure, consent revocation, audits — with the operation sentinels
// (denied / not found / exists) intact across the wire.
//
// Usage:
//
//	datacase-server -addr 127.0.0.1:7070 -shards 8 -profile P_SYS
//
// SIGINT/SIGTERM drains gracefully: new requests are refused with
// "unavailable" while in-flight requests finish (up to -drain), then
// the deployment closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/datacase/datacase"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		shards      = flag.Int("shards", 8, "shard count of the deployment")
		profileName = flag.String("profile", "P_SYS", "profile: P_Base|P_GBench|P_SYS")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	)
	flag.Parse()

	profile, err := parseProfile(*profileName)
	fail(err)
	// Audits over the wire need the model view; serving without it would
	// turn OpAudit into a permanent error.
	profile.TrackModel = true

	db, err := datacase.OpenSharded(profile, *shards)
	fail(err)

	srv := datacase.NewServer(datacase.NewLocalClient(db))
	fail(srv.Listen(*addr))
	fmt.Printf("datacase-server: profile=%s shards=%d listening on %s\n",
		profile.Name, *shards, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("datacase-server: %s; draining (budget %v)...\n", s, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "datacase-server: drain:", err)
	}
	fail(db.Close())
	fmt.Println("datacase-server: stopped")
}

func parseProfile(name string) (datacase.Profile, error) {
	switch name {
	case "P_Base":
		return datacase.PBase(), nil
	case "P_GBench":
		return datacase.PGBench(), nil
	case "P_SYS":
		return datacase.PSYS(), nil
	}
	return datacase.Profile{}, fmt.Errorf("unknown profile %q (want P_Base, P_GBench or P_SYS)", name)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-server:", err)
		os.Exit(1)
	}
}
