// Command datacase-server hosts a subject-sharded Data-CASE deployment
// behind the wire protocol: one process, one ShardedDB, one listening
// socket. Clients connect with datacase.Dial (or through a
// datacase-gateway routing a fleet of these servers) and get the full
// compliance surface — create/read/update/delete, subject access,
// erasure, consent revocation, audits — with the operation sentinels
// (denied / not found / exists) intact across the wire.
//
// Usage:
//
//	datacase-server -addr 127.0.0.1:7070 -shards 8 -profile P_SYS
//	datacase-server -addr 127.0.0.1:7070 -repl-addr 127.0.0.1:7071
//	                                  # primary: also serve the WAL-
//	                                  # shipping replication protocol
//	datacase-server -addr 127.0.0.1:7072 -replica-of 127.0.0.1:7071
//	                                  # read replica: bootstrap from the
//	                                  # primary and serve reads; every
//	                                  # mutation answers the read-only
//	                                  # sentinel
//
// A replica follows the primary's shard count (-shards is ignored) and
// receives the at-rest payload key over the replication handshake.
// RevokeConsent and EraseSubject on the primary do not return until
// this replica has acked (or been fenced for lagging).
//
// SIGINT/SIGTERM drains gracefully: new requests are refused with
// "unavailable" while in-flight requests finish (up to -drain), then
// the deployment closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/datacase/datacase"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		shards      = flag.Int("shards", 8, "shard count of the deployment (ignored with -replica-of)")
		profileName = flag.String("profile", "P_SYS", "profile: P_Base|P_GBench|P_SYS")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		replAddr    = flag.String("repl-addr", "", "also serve the replication protocol on this address (primary mode)")
		replicaOf   = flag.String("replica-of", "", "bootstrap as a read replica of the primary at this replication address")
		replicaID   = flag.String("replica-id", "", "replica identity for -replica-of (default: a random one)")
	)
	flag.Parse()

	profile, err := parseProfile(*profileName)
	fail(err)
	// Audits over the wire need the model view; serving without it would
	// turn OpAudit into a permanent error.
	profile.TrackModel = true

	if *replicaOf != "" && *replAddr != "" {
		fail(fmt.Errorf("-replica-of and -repl-addr are mutually exclusive (a replica does not serve replicas)"))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	if *replicaOf != "" {
		rep, err := datacase.StartReplica(*replicaOf, profile,
			datacase.ReplicationReplicaConfig{ID: *replicaID})
		fail(err)
		srv := datacase.NewServer(rep.Client())
		fail(srv.Listen(*addr))
		fmt.Printf("datacase-server: replica %s of %s, profile=%s, serving reads on %s\n",
			rep.ID(), *replicaOf, profile.Name, srv.Addr())

		s := <-sig
		fmt.Printf("datacase-server: %s; draining (budget %v)...\n", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "datacase-server: drain:", err)
		}
		fail(rep.Close())
		fmt.Println("datacase-server: stopped")
		return
	}

	db, err := datacase.OpenSharded(profile, *shards)
	fail(err)

	var prim *datacase.ReplicationPrimary
	if *replAddr != "" {
		prim, err = datacase.NewReplicationPrimary(db, datacase.ReplicationPrimaryConfig{})
		fail(err)
		bound, err := prim.Listen(*replAddr)
		fail(err)
		fmt.Printf("datacase-server: replication primary on %s\n", bound)
	}

	srv := datacase.NewServer(datacase.NewLocalClient(db))
	fail(srv.Listen(*addr))
	fmt.Printf("datacase-server: profile=%s shards=%d listening on %s\n",
		profile.Name, *shards, srv.Addr())

	s := <-sig
	fmt.Printf("datacase-server: %s; draining (budget %v)...\n", s, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "datacase-server: drain:", err)
	}
	if prim != nil {
		fail(prim.Close())
	}
	fail(db.Close())
	fmt.Println("datacase-server: stopped")
}

func parseProfile(name string) (datacase.Profile, error) {
	switch name {
	case "P_Base":
		return datacase.PBase(), nil
	case "P_GBench":
		return datacase.PGBench(), nil
	case "P_SYS":
		return datacase.PSYS(), nil
	}
	return datacase.Profile{}, fmt.Errorf("unknown profile %q (want P_Base, P_GBench or P_SYS)", name)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-server:", err)
		os.Exit(1)
	}
}
