// Command datacase-bench regenerates the paper's tables and figures and
// runs the repo's scaling experiments.
//
// Usage:
//
//	datacase-bench -exp all                    # everything, quick scale
//	datacase-bench -exp fig4a -records 100000  # one experiment, custom scale
//	datacase-bench -exp table2 -paper          # paper-scale parameters
//	datacase-bench -exp fig4b -csv             # CSV series output
//	datacase-bench -exp loadgen -workload wcon -clients 16
//	                                           # closed-loop driver sweep;
//	                                           # writes BENCH_loadgen.json
//	datacase-bench -exp recovery -recovery-ops 20000,100000
//	                                           # crash-recovery sweep: full
//	                                           # replay vs checkpointed;
//	                                           # writes BENCH_recovery.json
//	datacase-bench -exp backend                # heap vs LSM on the full
//	                                           # compliance stack; writes
//	                                           # BENCH_backend.json
//	datacase-bench -exp readpath -readpath-readers 1,4,16
//	                                           # read-scaling sweep: shared
//	                                           # lock + decision cache vs
//	                                           # one-big-mutex baseline;
//	                                           # writes BENCH_readpath.json
//	datacase-bench -exp network -network-conns 64,256,1024
//	                                           # wire-connection fleet
//	                                           # through the gateway;
//	                                           # writes BENCH_network.json
//	datacase-bench -exp replication -repl-replicas 2
//	                                           # WAL-shipping replica set:
//	                                           # async lag vs barriered
//	                                           # revocation latency; writes
//	                                           # BENCH_replication.json
//	datacase-bench -exp ingest -ingest-batches 1,16,256
//	                                           # batched write admission ×
//	                                           # full vs incremental
//	                                           # checkpoints; writes
//	                                           # BENCH_ingest.json
//	datacase-bench -exp durableheap -dh-records 6000
//	                                           # mmap durable-heap engine
//	                                           # vs row-image backends:
//	                                           # checkpoint + recovery
//	                                           # cost; writes
//	                                           # BENCH_durableheap.json
//	datacase-bench -list                       # print the experiment
//	                                           # registry and exit
//
// Experiments: table1, fig3, fig4a, fig4b, fig4c, table2, deleteonly,
// shardscale, loadgen, recovery, backend, readpath, reshard, network,
// replication, ingest, durableheap, all. An unknown
// -exp value exits with status 2 and a usage message; -list prints the
// registry with one-line descriptions and exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/datacase/datacase"
)

// experimentInfo is the closed registry of -exp values ("all" runs
// each), with the one-line descriptions -list prints.
var experimentInfo = []struct {
	name, desc string
}{
	{"table1", "Table 1: erasure interpretations and their measured IR/II/Inv characteristics"},
	{"fig3", "Figure 3: scheduler-driven data-erasure timeline"},
	{"fig4a", "Figure 4(a): completion time of the four erasure strategies on WCus (storage level)"},
	{"fig4b", "Figure 4(b): completion time of the three profiles across WPro/WCon/WCus/YCSB-C"},
	{"fig4c", "Figure 4(c): profile completion time as the record count grows"},
	{"table2", "Table 2: storage-space overhead per profile after a WCus run"},
	{"deleteonly", "footnote: plain DELETE beats DELETE+VACUUM on a delete-only stream"},
	{"shardscale", "shard-count sweep of the subject-sharded engine under concurrent clients"},
	{"loadgen", "closed-loop concurrent load driver; writes BENCH_loadgen.json"},
	{"recovery", "crash-recovery sweep, full replay vs checkpointed; writes BENCH_recovery.json"},
	{"backend", "heap vs LSM compliance backends: Fig 4(a) series, Table 1 conformance and erase checks; writes BENCH_backend.json"},
	{"readpath", "read-scaling sweep: shared-lock + decision cache vs one-big-mutex baseline; writes BENCH_readpath.json"},
	{"reshard", "elastic resharding: Zipfian hot shard measured before/after a live rebalancer split; writes BENCH_reshard.json"},
	{"network", "end-to-end network soak: a wire-connection fleet through the subject-routing gateway; writes BENCH_network.json"},
	{"replication", "WAL-shipping replica set: async write lag vs synchronous revocation-barrier latency; writes BENCH_replication.json"},
	{"ingest", "batched write admission sweep: batch size × backend × full/incremental checkpoints; writes BENCH_ingest.json"},
	{"durableheap", "mmap durable-heap engine vs row-image backends: ingest, forced-checkpoint cost, crash recovery; writes BENCH_durableheap.json"},
}

// experimentNames returns the registry names in order.
func experimentNames() []string {
	names := make([]string, len(experimentInfo))
	for i, e := range experimentInfo {
		names[i] = e.name
	}
	return names
}

func knownExperiment(name string) bool {
	if name == "all" {
		return true
	}
	for _, e := range experimentInfo {
		if e.name == name {
			return true
		}
	}
	return false
}

func main() {
	var (
		list = flag.Bool("list", false,
			"print the experiment registry with descriptions and exit")
		exp = flag.String("exp", "all",
			"experiment: "+strings.Join(experimentNames(), "|")+"|all")
		records  = flag.Int("records", 0, "records (0 = scale default)")
		txns     = flag.Int("txns", 0, "transactions (0 = scale default)")
		paper    = flag.Bool("paper", false, "use the paper's scale (100k records; slower)")
		seed     = flag.Int64("seed", 1, "workload seed")
		csv      = flag.Bool("csv", false, "emit figures as CSV instead of tables")
		factor   = flag.Int("fig4a-divisor", 5, "divide fig4a's 10K-70K txn sweep by this (1 = paper sweep)")
		shards   = flag.String("shards", "1,4,16", "shard-count sweep for -exp shardscale")
		clients  = flag.Int("clients", 8, "concurrent clients (shardscale; max of the loadgen sweep)")
		workload = flag.String("workload", "wcon", "GDPRBench workload for -exp loadgen: wcon|wpro|wcus|all")
		shardN   = flag.Int("loadgen-shards", 16, "shard count for -exp loadgen")
		out      = flag.String("out", "BENCH_loadgen.json", "JSON output path for -exp loadgen")
		walcmp   = flag.Bool("wal-compare", false, "loadgen: also run the per-append-locking WAL baseline")

		recOps    = flag.String("recovery-ops", "20000,100000", "ops sweep for -exp recovery (WAL lengths)")
		recRecs   = flag.Int("recovery-records", 5000, "preloaded records for -exp recovery")
		recShards = flag.Int("recovery-shards", 8, "shard count for -exp recovery")
		recEvery  = flag.Int("recovery-checkpoint-every", 2000, "per-shard checkpoint interval (ops) for -exp recovery")
		recOut    = flag.String("recovery-out", "BENCH_recovery.json", "JSON output path for -exp recovery")

		backendOut = flag.String("backend-out", "BENCH_backend.json", "JSON output path for -exp backend")

		rpReaders = flag.String("readpath-readers", "1,4,16", "reader sweep for -exp readpath")
		rpShards  = flag.Int("readpath-shards", 1, "shard count for -exp readpath (fixed across the sweep)")
		rpRecords = flag.Int("readpath-records", 500, "preloaded records for -exp readpath")
		rpOps     = flag.Int("readpath-ops", 4000, "total reads per sweep point for -exp readpath")
		rpStall   = flag.Int("readpath-stall-micros", 200,
			"modeled per-payload device latency in µs for -exp readpath (0 disables the model)")
		rpOut = flag.String("readpath-out", "BENCH_readpath.json", "JSON output path for -exp readpath")

		rsShards   = flag.Int("reshard-shards", 3, "opening shard count for -exp reshard (>= 3)")
		rsSubjects = flag.Int("reshard-subjects", 16, "hot subjects pinned to one shard for -exp reshard")
		rsRecords  = flag.Int("reshard-records", 256, "preloaded records for -exp reshard")
		rsClients  = flag.Int("reshard-clients", 8, "closed-loop writer count for -exp reshard")
		rsOps      = flag.Int("reshard-ops", 4000, "updates per measured phase for -exp reshard")
		rsZipf     = flag.Float64("reshard-zipf", 0.9, "subject-selection Zipf exponent for -exp reshard")
		rsStall    = flag.Int("reshard-stall-micros", 150,
			"modeled per-payload device latency in µs for -exp reshard")
		rsOut = flag.String("reshard-out", "BENCH_reshard.json", "JSON output path for -exp reshard")

		netConns   = flag.String("network-conns", "64,256,1024", "connection-count sweep for -exp network")
		netRecords = flag.Int("network-records", 2000, "preloaded records for -exp network")
		netOps     = flag.Int("network-ops", 4000, "total ops per sweep point for -exp network")
		netServers = flag.Int("network-servers", 2, "self-hosted server count for -exp network")
		netShards  = flag.Int("network-shards", 4, "shards per server for -exp network")
		netGateway = flag.String("network-gateway", "",
			"existing gateway address for -exp network (empty = self-host the topology in-process)")
		netOut = flag.String("network-out", "BENCH_network.json", "JSON output path for -exp network")

		replShards   = flag.Int("repl-shards", 2, "primary shard count for -exp replication")
		replReplicas = flag.Int("repl-replicas", 2, "replica-set size for -exp replication")
		replRecords  = flag.Int("repl-records", 200, "preloaded records for -exp replication")
		replWrites   = flag.Int("repl-writes", 200, "lag-sampled async creates for -exp replication")
		replRevokes  = flag.Int("repl-revokes", 50, "measured revocation barriers for -exp replication")
		replErases   = flag.Int("repl-erases", 10, "measured erasure barriers for -exp replication")
		replOut      = flag.String("repl-out", "BENCH_replication.json", "JSON output path for -exp replication")

		ingBatches = flag.String("ingest-batches", "1,16,256", "batch-size sweep for -exp ingest")
		ingRecords = flag.Int("ingest-records", 4096, "records ingested per sweep point for -exp ingest")
		ingShards  = flag.Int("ingest-shards", 4, "shard count for -exp ingest")
		ingEvery   = flag.Int("ingest-checkpoint-every", 64, "per-shard checkpoint interval (ops) for -exp ingest")
		ingOut     = flag.String("ingest-out", "BENCH_ingest.json", "JSON output path for -exp ingest")

		dhRecords    = flag.Int("dh-records", 6000, "records ingested per backend for -exp durableheap")
		dhValueBytes = flag.Int("dh-value-bytes", 4096, "payload bytes per record for -exp durableheap")
		dhShards     = flag.Int("dh-shards", 4, "shard count for -exp durableheap")
		dhCkpts      = flag.Int("dh-checkpoints", 3, "forced touch-then-checkpoint cycles for -exp durableheap")
		dhOut        = flag.String("dh-out", "BENCH_durableheap.json", "JSON output path for -exp durableheap")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (-exp <name>, or all):")
		for _, e := range experimentInfo {
			fmt.Printf("  %-12s %s\n", e.name, e.desc)
		}
		return
	}

	if !knownExperiment(*exp) {
		fmt.Fprintf(os.Stderr, "datacase-bench: unknown experiment %q (want %s or all)\n",
			*exp, strings.Join(experimentNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}

	scale := datacase.DefaultScale()
	if *paper {
		scale = datacase.PaperScale()
		*factor = 1
	}
	if *records > 0 {
		scale.Records = *records
	}
	if *txns > 0 {
		scale.Txns = *txns
	}
	scale.Seed = *seed

	// ran guards against the experiments list and the dispatch blocks
	// drifting apart: a name that validates but matches no block would
	// otherwise silently do nothing.
	ran := false
	run := func(name string) bool {
		hit := *exp == "all" || *exp == name
		ran = ran || hit
		return hit
	}

	if run("table1") {
		rows, err := datacase.Table1()
		fail(err)
		fmt.Println(datacase.RenderTable1(rows))
	}
	if run("fig3") {
		lines, err := datacase.Fig3Timeline()
		fail(err)
		fmt.Println("Figure 3: data erasure timeline (scheduler-driven)")
		fmt.Println(strings.Join(lines, "\n"))
		fmt.Println()
	}
	if run("fig4a") {
		fmt.Printf("running fig4a (records=%d, txn sweep 10K-70K ÷%d)...\n", scale.Records, *factor)
		fig, err := datacase.Fig4a(scale, *factor)
		fail(err)
		render(fig, nil, *csv)
	}
	if run("fig4b") {
		fmt.Printf("running fig4b (records=%d, txns=%d)...\n", scale.Records, scale.Txns)
		fig, err := datacase.Fig4b(scale)
		fail(err)
		render(fig, datacase.Fig4bWorkloads(), *csv)
	}
	if run("fig4c") {
		fmt.Printf("running fig4c (records sweep %d-%d, txns=%d)...\n",
			scale.Records, scale.Records*5, scale.Txns)
		lines, bars, err := datacase.Fig4c(scale)
		fail(err)
		render(lines, nil, *csv)
		render(bars, nil, *csv)
	}
	if run("table2") {
		fmt.Printf("running table2 (records=%d, txns=%d, WCus)...\n", scale.Records, scale.Txns)
		reports, err := datacase.Table2(scale)
		fail(err)
		fmt.Println("Table 2: storage space overhead")
		for _, r := range reports {
			fmt.Printf("  %s\n", r)
		}
		fmt.Println()
	}
	if run("deleteonly") {
		fmt.Printf("running delete-only footnote (records=%d)...\n", scale.Records)
		for _, s := range []datacase.EraseStrategy{datacase.StratDelete, datacase.StratVacuum} {
			r, err := datacase.RunDeleteOnlyWorkload(s, scale.Records, scale.Seed)
			fail(err)
			fmt.Printf("  %s\n", r)
		}
		fmt.Println("  (expected: plain DELETE wins on a delete-only workload — the paper's footnote)")
		fmt.Println()
	}
	if run("shardscale") {
		sweep, err := parseShards(*shards)
		fail(err)
		fmt.Printf("running shardscale (records=%d, txns=%d, shards=%v, clients=%d)...\n",
			scale.Records, scale.Txns, sweep, *clients)
		fig, err := datacase.ShardScaling(scale, sweep, *clients)
		fail(err)
		render(fig, nil, *csv)
	}
	if run("loadgen") {
		runLoadgen(scale, *workload, *clients, *shardN, *out, *walcmp, *csv)
	}
	if run("recovery") {
		runRecovery(scale, *recOps, *recRecs, *recShards, *recEvery, *recOut, *csv)
	}
	if run("backend") {
		runBackend(scale, *factor, *backendOut, *csv)
	}
	if run("readpath") {
		runReadPath(*rpReaders, *rpShards, *rpRecords, *rpOps, *rpStall, *rpOut, *csv)
	}
	if run("reshard") {
		runReshard(*rsShards, *rsSubjects, *rsRecords, *rsClients, *rsOps, *rsZipf, *rsStall, *seed, *rsOut)
	}
	if run("network") {
		runNetwork(*workload, *netConns, *netRecords, *netOps, *netServers, *netShards, *netGateway, *seed, *netOut)
	}
	if run("replication") {
		runReplication(*replShards, *replReplicas, *replRecords, *replWrites, *replRevokes, *replErases, *seed, *replOut)
	}
	if run("ingest") {
		runIngest(*ingBatches, *ingRecords, *ingShards, *ingEvery, *ingOut, *csv)
	}
	if run("durableheap") {
		runDurableHeap(*dhRecords, *dhValueBytes, *dhShards, *dhCkpts, *seed, *dhOut, *csv)
	}
	if !ran {
		fmt.Fprintf(os.Stderr,
			"datacase-bench: experiment %q validated but matched no dispatch block (list/dispatch drift)\n", *exp)
		os.Exit(2)
	}
}

// runLoadgen drives the closed-loop driver over a client sweep for the
// selected workload(s), renders the completion-time figure and writes
// the machine-readable BENCH_loadgen.json report.
func runLoadgen(scale datacase.Scale, workload string, clients, shards int, out string, walcmp, csv bool) {
	var workloads []datacase.GDPRWorkload
	if strings.EqualFold(strings.TrimSpace(workload), "all") {
		workloads = datacase.GDPRWorkloads()
	} else {
		w, err := datacase.ParseWorkload(workload)
		fail(err)
		workloads = []datacase.GDPRWorkload{w}
	}
	sweep := datacase.ClientSweepUpTo(clients)
	// The serial-WAL baseline pairs with the sweep's top client count,
	// whatever -clients resolved to.
	topClients := sweep[len(sweep)-1]
	fmt.Printf("running loadgen (records=%d, ops=%d, shards=%d, clients=%v, workloads=%v)...\n",
		scale.Records, scale.Txns, shards, sweep, workloads)

	var results []datacase.LoadgenResult
	for _, w := range workloads {
		rs, err := datacase.LoadgenSweep(datacase.PBase(), w, scale, shards, sweep)
		fail(err)
		results = append(results, rs...)
		if walcmp {
			// The per-append-locking baseline at the highest client
			// count, isolating the WAL commit protocol.
			profile := datacase.PBase()
			profile.SerialWAL = true
			serial, err := datacase.RunLoadgen(datacase.LoadgenConfig{
				Profile:  profile,
				Workload: w,
				Records:  scale.Records,
				Ops:      scale.Txns,
				Clients:  topClients,
				Shards:   shards,
				Seed:     scale.Seed,
			})
			fail(err)
			results = append(results, serial)
		}
	}
	for _, r := range results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	render(datacase.LoadgenFigure(results), nil, csv)
	fail(datacase.WriteLoadgenJSON(out, results))
	fmt.Printf("wrote %s (%d results)\n", out, len(results))
}

// runRecovery sweeps WAL lengths, recovering each crashed deployment
// twice — full-log replay vs checkpointed — and writes the
// machine-readable BENCH_recovery.json report.
func runRecovery(scale datacase.Scale, opsCSV string, records, shards, every int, out string, csv bool) {
	sweep, err := parseShards(opsCSV) // same "positive ints, comma-separated" grammar
	fail(err)
	fmt.Printf("running recovery (records=%d, shards=%d, ops sweep=%v, checkpoint every %d ops/shard)...\n",
		records, shards, sweep, every)
	results, err := datacase.RecoverySweep(datacase.PBase(), sweep, records, shards, every, scale.Seed)
	fail(err)
	for _, r := range results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	// Pairs are (full, checkpointed) per sweep point; report the speedup.
	for i := 0; i+1 < len(results); i += 2 {
		full, ckpt := results[i], results[i+1]
		verdict := "FASTER"
		if ckpt.RecoverSeconds >= full.RecoverSeconds {
			verdict = "NOT faster (increase the sweep: checkpoint wins grow with WAL length)"
		}
		fmt.Printf("  ops=%d: checkpointed recovery %.2fx of full replay — %s\n",
			full.Ops, ckpt.RecoverSeconds/full.RecoverSeconds, verdict)
	}
	render(datacase.RecoveryFigure(results), nil, csv)
	fail(datacase.WriteRecoveryJSON(out, results))
	fmt.Printf("wrote %s (%d results)\n", out, len(results))
}

// runBackend runs the heap-vs-LSM comparison on the full compliance
// stack, renders the completion-time figure and the conformance rows,
// and writes the machine-readable BENCH_backend.json report.
func runBackend(scale datacase.Scale, factor int, out string, csv bool) {
	fmt.Printf("running backend comparison (records=%d, txn sweep 10K-70K ÷%d, backends=%v)...\n",
		scale.Records, factor, datacase.Backends())
	rep, err := datacase.RunBackendComparison(scale, factor)
	fail(err)
	for _, r := range rep.Results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("Table 1 conformance per backend:")
	for _, row := range rep.Table1 {
		fmt.Printf("  %-4s %-26s conforms=%v\n", row.Backend, row.Interpretation, row.Conforms)
	}
	for _, c := range rep.EraseChecks {
		fail(c.Validate())
		fmt.Printf("  %s\n", c)
	}
	render(datacase.BackendFigure(rep.Results), nil, csv)
	fail(datacase.WriteBackendJSON(out, rep))
	fmt.Printf("wrote %s (%d results, %d table1 rows, %d erase checks)\n",
		out, len(rep.Results), len(rep.Table1), len(rep.EraseChecks))
}

// runReadPath sweeps reader counts over both backends with the decision
// cache on and off, plus the exclusive-lock baseline, renders the
// throughput figure and writes (then re-reads, enforcing the >= 3x
// read-scaling property) the machine-readable BENCH_readpath.json.
func runReadPath(readersCSV string, shards, records, ops, stallMicros int, out string, csv bool) {
	readers, err := parseShards(readersCSV) // same "positive ints" grammar
	fail(err)
	stall := time.Duration(stallMicros) * time.Microsecond
	fmt.Printf("running readpath (records=%d, ops=%d, shards=%d, readers=%v, io-stall=%v, backends=%v)...\n",
		records, ops, shards, readers, stall, datacase.Backends())
	results, err := datacase.ReadPathSweep(datacase.Backends(), readers, shards, records, ops, stall, 1)
	fail(err)
	for _, r := range results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	render(datacase.ReadPathFigure(results), nil, csv)
	fail(datacase.WriteReadPathJSON(out, results))
	rep, err := datacase.ReadReadPathJSON(out)
	fail(err)
	for _, backend := range datacase.Backends() {
		for _, cache := range []bool{false, true} {
			if factor, ok := rep.ReadScaling(backend, cache); ok {
				fmt.Printf("  %s cache=%-5v: widest sweep point delivers %.1fx single-reader throughput\n",
					backend, cache, factor)
			}
		}
	}
	fmt.Printf("wrote %s (%d results)\n", out, len(results))
}

// runReshard runs the elastic-resharding experiment on both backends:
// a Zipfian hot-subject workload pinned to one shard, measured before
// and after a live rebalancer-driven split, then writes (and re-reads,
// enforcing the >= 1.5x post-split speedup floor) BENCH_reshard.json.
func runReshard(shards, subjects, records, clients, ops int, zipfS float64, stallMicros int, seed int64, out string) {
	stall := time.Duration(stallMicros) * time.Microsecond
	fmt.Printf("running reshard (shards=%d, subjects=%d, records=%d, clients=%d, ops/phase=%d, zipf=%.2f, io-stall=%v, backends=%v)...\n",
		shards, subjects, records, clients, ops, zipfS, stall, datacase.Backends())
	var results []datacase.ReshardResult
	for _, backend := range datacase.Backends() {
		r, err := datacase.RunReshard(datacase.ReshardConfig{
			Backend: backend, Shards: shards, Subjects: subjects,
			Records: records, Clients: clients, OpsPerPhase: ops,
			ZipfS: zipfS, IOStall: stall, Seed: seed,
		})
		fail(err)
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
		results = append(results, r)
	}
	fail(datacase.WriteReshardJSON(out, results))
	_, err := datacase.ReadReshardJSON(out)
	fail(err)
	fmt.Printf("wrote %s (%d results, all above the %.1fx speedup floor)\n",
		out, len(results), benchxReshardFloor)
}

// benchxReshardFloor mirrors the library's acceptance floor for the
// summary line.
const benchxReshardFloor = 1.5

// runNetwork sweeps connection counts through the wire stack — a
// self-hosted servers+gateway topology by default, or an external
// gateway via -network-gateway — then writes and re-reads (validating)
// the machine-readable BENCH_network.json.
func runNetwork(workload, connsCSV string, records, ops, servers, shards int, gateway string, seed int64, out string) {
	w, err := datacase.ParseWorkload(workload)
	fail(err)
	conns, err := parseShards(connsCSV) // same "positive ints" grammar
	fail(err)
	where := fmt.Sprintf("self-hosted %d×%d", servers, shards)
	if gateway != "" {
		where = "gateway " + gateway
	}
	fmt.Printf("running network (records=%d, ops=%d, conns=%v, %s, workload=%s)...\n",
		records, ops, conns, where, w)
	results, err := datacase.NetworkSweep(datacase.NetworkConfig{
		Workload: w, Records: records, Ops: ops,
		Servers: servers, ShardsPerServer: shards,
		GatewayAddr: gateway, Seed: seed,
	}, conns)
	fail(err)
	for _, r := range results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	fail(datacase.WriteNetworkJSON(out, results))
	_, err = datacase.ReadNetworkJSON(out)
	fail(err)
	fmt.Printf("wrote %s (%d results)\n", out, len(results))
}

// runReplication measures the WAL-shipping replica set on both
// backends — async write lag against the synchronous
// revocation-barrier latency — then writes and re-reads (validating
// the zero-violation barrier property) BENCH_replication.json.
func runReplication(shards, replicas, records, writes, revokes, erases int, seed int64, out string) {
	fmt.Printf("running replication (shards=%d, replicas=%d, records=%d, writes=%d, revokes=%d, erases=%d, backends=%v)...\n",
		shards, replicas, records, writes, revokes, erases, datacase.Backends())
	var results []datacase.ReplicationResult
	for _, backend := range datacase.Backends() {
		r, err := datacase.RunReplication(datacase.ReplicationConfig{
			Backend: backend, Shards: shards, Replicas: replicas,
			Records: records, Writes: writes, Revokes: revokes,
			Erases: erases, Seed: seed,
		})
		fail(err)
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
		results = append(results, r)
	}
	fail(datacase.WriteReplicationJSON(out, results))
	_, err := datacase.ReadReplicationJSON(out)
	fail(err)
	fmt.Printf("wrote %s (%d results, zero barrier violations)\n", out, len(results))
}

// runIngest sweeps batch sizes over both backends with full and
// incremental checkpoints, renders the throughput figure and writes
// (then re-reads, enforcing the batch-speedup and delta-ratio gates)
// the machine-readable BENCH_ingest.json.
func runIngest(batchesCSV string, records, shards, every int, out string, csv bool) {
	batches, err := parseShards(batchesCSV) // same "positive ints" grammar
	fail(err)
	fmt.Printf("running ingest (records=%d, shards=%d, batches=%v, checkpoint every %d ops/shard, backends=%v)...\n",
		records, shards, batches, every, datacase.Backends())
	var results []datacase.IngestResult
	for _, backend := range datacase.Backends() {
		for _, incremental := range []bool{false, true} {
			for _, bs := range batches {
				r, err := datacase.RunIngest(backend, records, bs, shards, every, incremental)
				fail(err)
				fail(r.Validate())
				fmt.Printf("  %s\n", r)
				results = append(results, r)
			}
		}
	}
	render(datacase.IngestFigure(results), nil, csv)
	fail(datacase.WriteIngestJSON(out, results))
	_, err = datacase.ReadIngestJSON(out)
	fail(err)
	fmt.Printf("wrote %s (%d results, batch speedups above the floor)\n", out, len(results))
}

// runDurableHeap runs the durable-heap engine comparison across all
// three backends — timed ingest, forced-checkpoint cost, crash
// recovery — then writes and re-reads (enforcing the >= 2x recovery
// and >= 5x checkpoint-cost floors) BENCH_durableheap.json.
func runDurableHeap(records, valueBytes, shards, checkpoints int, seed int64, out string, csv bool) {
	fmt.Printf("running durableheap (records=%d, value-bytes=%d, shards=%d, checkpoints=%d, backends=%v)...\n",
		records, valueBytes, shards, checkpoints, datacase.DurableHeapBackends())
	rep, err := datacase.DurableHeapSweep(records, valueBytes, shards, checkpoints, seed)
	fail(err)
	for _, r := range rep.Results {
		fail(r.Validate())
		fmt.Printf("  %s\n", r)
	}
	render(datacase.DurableHeapFigure(rep), nil, csv)
	fail(datacase.WriteDurableHeapJSON(out, rep))
	_, err = datacase.ReadDurableHeapJSON(out)
	fail(err)
	fmt.Printf("wrote %s (%d results, above the recovery and checkpoint-cost floors)\n",
		out, len(rep.Results))
}

// parseShards parses a comma-separated shard-count sweep like "1,4,16".
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty shard sweep %q", s)
	}
	return out, nil
}

func render(fig datacase.Figure, xnames []string, csv bool) {
	if csv {
		fmt.Println(fig.Title)
		fmt.Print(datacase.RenderFigureCSV(fig))
	} else {
		fmt.Print(datacase.RenderFigure(fig, xnames))
	}
	fmt.Println()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-bench:", err)
		os.Exit(1)
	}
}
