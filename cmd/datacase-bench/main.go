// Command datacase-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	datacase-bench -exp all                    # everything, quick scale
//	datacase-bench -exp fig4a -records 100000  # one experiment, custom scale
//	datacase-bench -exp table2 -paper          # paper-scale parameters
//	datacase-bench -exp fig4b -csv             # CSV series output
//
// Experiments: table1, fig3, fig4a, fig4b, fig4c, table2, deleteonly,
// shardscale, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/datacase/datacase"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig3|fig4a|fig4b|fig4c|table2|deleteonly|shardscale|all")
		records = flag.Int("records", 0, "records (0 = scale default)")
		txns    = flag.Int("txns", 0, "transactions (0 = scale default)")
		paper   = flag.Bool("paper", false, "use the paper's scale (100k records; slower)")
		seed    = flag.Int64("seed", 1, "workload seed")
		csv     = flag.Bool("csv", false, "emit figures as CSV instead of tables")
		factor  = flag.Int("fig4a-divisor", 5, "divide fig4a's 10K-70K txn sweep by this (1 = paper sweep)")
		shards  = flag.String("shards", "1,4,16", "shard-count sweep for -exp shardscale")
		clients = flag.Int("clients", 8, "concurrent clients for -exp shardscale")
	)
	flag.Parse()

	scale := datacase.DefaultScale()
	if *paper {
		scale = datacase.PaperScale()
		*factor = 1
	}
	if *records > 0 {
		scale.Records = *records
	}
	if *txns > 0 {
		scale.Txns = *txns
	}
	scale.Seed = *seed

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("table1") {
		ran = true
		rows, err := datacase.Table1()
		fail(err)
		fmt.Println(datacase.RenderTable1(rows))
	}
	if run("fig3") {
		ran = true
		lines, err := datacase.Fig3Timeline()
		fail(err)
		fmt.Println("Figure 3: data erasure timeline (scheduler-driven)")
		fmt.Println(strings.Join(lines, "\n"))
		fmt.Println()
	}
	if run("fig4a") {
		ran = true
		fmt.Printf("running fig4a (records=%d, txn sweep 10K-70K ÷%d)...\n", scale.Records, *factor)
		fig, err := datacase.Fig4a(scale, *factor)
		fail(err)
		render(fig, nil, *csv)
	}
	if run("fig4b") {
		ran = true
		fmt.Printf("running fig4b (records=%d, txns=%d)...\n", scale.Records, scale.Txns)
		fig, err := datacase.Fig4b(scale)
		fail(err)
		render(fig, datacase.Fig4bWorkloads(), *csv)
	}
	if run("fig4c") {
		ran = true
		fmt.Printf("running fig4c (records sweep %d-%d, txns=%d)...\n",
			scale.Records, scale.Records*5, scale.Txns)
		lines, bars, err := datacase.Fig4c(scale)
		fail(err)
		render(lines, nil, *csv)
		render(bars, nil, *csv)
	}
	if run("table2") {
		ran = true
		fmt.Printf("running table2 (records=%d, txns=%d, WCus)...\n", scale.Records, scale.Txns)
		reports, err := datacase.Table2(scale)
		fail(err)
		fmt.Println("Table 2: storage space overhead")
		for _, r := range reports {
			fmt.Printf("  %s\n", r)
		}
		fmt.Println()
	}
	if run("deleteonly") {
		ran = true
		fmt.Printf("running delete-only footnote (records=%d)...\n", scale.Records)
		for _, s := range []datacase.EraseStrategy{datacase.StratDelete, datacase.StratVacuum} {
			r, err := datacase.RunDeleteOnlyWorkload(s, scale.Records, scale.Seed)
			fail(err)
			fmt.Printf("  %s\n", r)
		}
		fmt.Println("  (expected: plain DELETE wins on a delete-only workload — the paper's footnote)")
		fmt.Println()
	}
	if run("shardscale") {
		ran = true
		sweep, err := parseShards(*shards)
		fail(err)
		fmt.Printf("running shardscale (records=%d, txns=%d, shards=%v, clients=%d)...\n",
			scale.Records, scale.Txns, sweep, *clients)
		fig, err := datacase.ShardScaling(scale, sweep, *clients)
		fail(err)
		render(fig, nil, *csv)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// parseShards parses a comma-separated shard-count sweep like "1,4,16".
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty shard sweep %q", s)
	}
	return out, nil
}

func render(fig datacase.Figure, xnames []string, csv bool) {
	if csv {
		fmt.Println(fig.Title)
		fmt.Print(datacase.RenderFigureCSV(fig))
	} else {
		fmt.Print(datacase.RenderFigure(fig, xnames))
	}
	fmt.Println()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datacase-bench:", err)
		os.Exit(1)
	}
}
