// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), plus ablations of the design choices DESIGN.md calls
// out. One b.N iteration = one complete (reduced-scale) experiment; use
// cmd/datacase-bench for full-scale sweeps and readable tables.
package datacase_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/datacase/datacase"
	"github.com/datacase/datacase/internal/compliance"
	"github.com/datacase/datacase/internal/gdprbench"
	"github.com/datacase/datacase/internal/storage/lsm"
	"github.com/datacase/datacase/internal/wal"
)

// benchScale keeps one iteration around tens of milliseconds.
const (
	benchRecords = 2000
	benchTxns    = 1000
)

// BenchmarkTable1ErasureProperties regenerates Table 1: build a fresh
// scenario per interpretation, erase, and measure IR/II/Inv.
func BenchmarkTable1ErasureProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := datacase.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Conforms {
				b.Fatalf("%v does not conform", r.Interpretation)
			}
		}
	}
}

// BenchmarkFig3Timeline drives a unit through the Figure-3 erasure
// timeline with the scheduler.
func BenchmarkFig3Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datacase.Fig3Timeline(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aErasure measures each erasure strategy on the WCus mix
// (one Figure-4(a) cell per sub-benchmark).
func BenchmarkFig4aErasure(b *testing.B) {
	for _, strat := range datacase.EraseStrategies() {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunEraseStrategy(strat, benchRecords, benchTxns, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4bProfiles measures each profile × workload cell of
// Figure 4(b).
func BenchmarkFig4bProfiles(b *testing.B) {
	for _, p := range datacase.Profiles() {
		for _, w := range []datacase.GDPRWorkload{datacase.WPro, datacase.WCon, datacase.WCus} {
			b.Run(fmt.Sprintf("%s/%s", p.Name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := datacase.RunGDPRBench(p, w, benchRecords, benchTxns, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("%s/YCSB-C", p.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunYCSB(p, datacase.YCSBC, benchRecords, benchTxns, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4cScalability measures WCus completion time at growing
// record counts (Figure 4(c)'s lines) for the cheapest and costliest
// profiles.
func BenchmarkFig4cScalability(b *testing.B) {
	for _, p := range []datacase.Profile{datacase.PBase(), datacase.PSYS()} {
		for _, mult := range []int{1, 3, 5} {
			records := benchRecords * mult
			b.Run(fmt.Sprintf("%s/records-%d", p.Name, records), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := datacase.RunGDPRBench(p, datacase.WCus, records, benchTxns, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2Space loads + runs each profile and computes the
// Table-2 space report.
func BenchmarkTable2Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := datacase.Table2(datacase.Scale{Records: benchRecords, Txns: benchTxns / 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != 3 {
			b.Fatal("missing reports")
		}
	}
}

// BenchmarkDeleteOnlyFootnote measures the paper's footnote case: on a
// 100%-delete stream, plain DELETE beats DELETE+VACUUM.
func BenchmarkDeleteOnlyFootnote(b *testing.B) {
	for _, strat := range []datacase.EraseStrategy{datacase.StratDelete, datacase.StratVacuum} {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunDeleteOnlyWorkload(strat, benchRecords, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardScaling measures the subject-sharded engine at growing
// shard counts: concurrent WCus, batched right-to-be-forgotten erasure,
// and the global parallel audit. On a multi-core box each workload's
// time drops monotonically from 1 → 4 → 16 shards; shards-1 is the
// single-lock baseline.
func BenchmarkShardScaling(b *testing.B) {
	clients := 8
	for _, shards := range datacase.DefaultShardSweep() {
		b.Run(fmt.Sprintf("WCus/shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunShardedGDPRBench(datacase.PBase(), datacase.WCus,
					benchRecords, benchTxns, shards, clients, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("EraseBatch/shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunShardedErasureBatch(datacase.PBase(),
					benchRecords, shards, clients, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Audit/shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunShardedAudit(datacase.PBase(),
					benchRecords, shards, clients, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadgen runs the closed-loop driver at 1/4/16 concurrent
// clients against a 16-shard deployment on the controller workload (the
// write-heaviest mix, where WAL commit cost shows). On a multi-core box
// ops/sec (reported as the ops/s metric) rises with the client count.
func BenchmarkLoadgen(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("WCon/clients-%d", clients), func(b *testing.B) {
			var opsPerSec float64
			for i := 0; i < b.N; i++ {
				res, err := datacase.RunLoadgen(datacase.LoadgenConfig{
					Workload: datacase.WCon,
					Records:  benchRecords,
					Ops:      benchTxns,
					Clients:  clients,
					Shards:   16,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Validate(); err != nil {
					b.Fatal(err)
				}
				opsPerSec = res.OpsPerSec
			}
			b.ReportMetric(opsPerSec, "ops/s")
		})
	}
}

// walWConStream derives the WAL append traffic a controller-workload
// run generates: creates log inserts, erasures log deletes, metadata
// updates log updates. The stream is deterministic for the seed.
func walWConStream(n int) []wal.Record {
	gen, err := gdprbench.NewGenerator(gdprbench.Controller, 1000, 1)
	if err != nil {
		panic(err)
	}
	out := make([]wal.Record, 0, n)
	for _, op := range gen.Ops(n) {
		switch op.Kind {
		case gdprbench.OpCreate:
			out = append(out, wal.Record{Type: wal.RecInsert, Key: []byte(op.Key), Payload: op.Payload})
		case gdprbench.OpDeleteData:
			out = append(out, wal.Record{Type: wal.RecDelete, Key: []byte(op.Key)})
		default: // OpUpdateMeta
			out = append(out, wal.Record{Type: wal.RecUpdate, Key: []byte(op.Key), Payload: []byte("meta")})
		}
	}
	return out
}

// BenchmarkWALCommitProtocol replays the WCon-derived WAL append stream
// with 16 concurrent appenders through both commit protocols. Group
// commit amortizes lock acquisitions and syncs across batches, so at 16
// clients it beats per-append locking; at 1 client the two converge.
func BenchmarkWALCommitProtocol(b *testing.B) {
	const streamLen = 4096
	stream := walWConStream(streamLen)
	for _, mode := range []struct {
		name string
		mk   func() *wal.Log
	}{
		{"group-commit", wal.New},
		{"per-append-lock", wal.NewSerial},
	} {
		for _, clients := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/clients-%d", mode.name, clients), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					l := mode.mk()
					chunk := (streamLen + clients - 1) / clients
					var wg sync.WaitGroup
					for c := 0; c < clients; c++ {
						lo := min(c*chunk, streamLen)
						hi := min(lo+chunk, streamLen)
						wg.Add(1)
						go func(recs []wal.Record) {
							defer wg.Done()
							for _, r := range recs {
								l.Append(r.Type, r.Key, r.Payload)
							}
						}(stream[lo:hi])
					}
					wg.Wait()
					if l.Len() != streamLen {
						b.Fatalf("Len = %d", l.Len())
					}
				}
				b.ReportMetric(float64(streamLen*b.N)/b.Elapsed().Seconds(), "appends/s")
			})
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationVacuumThreshold sweeps the autovacuum dead-ratio
// threshold of P_Base on WCus: too eager wastes vacuum passes, too lazy
// lets scans degrade.
func BenchmarkAblationVacuumThreshold(b *testing.B) {
	for _, threshold := range []float64{0.05, 0.2, 0.5} {
		b.Run(fmt.Sprintf("threshold-%.2f", threshold), func(b *testing.B) {
			p := datacase.PBase()
			p.VacuumThreshold = threshold
			for i := 0; i < b.N; i++ {
				if _, err := datacase.RunGDPRBench(p, datacase.WCus, benchRecords, benchTxns, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGCGrace compares LSM read cost after deletes with a
// short versus effectively-infinite tombstone GC grace: long grace keeps
// shadowed data resident and reads slower — the paper's illegal-retention
// hazard has a performance face too.
func BenchmarkAblationGCGrace(b *testing.B) {
	build := func(grace int64) *lsm.Store {
		s := lsm.New(lsm.Options{
			MemtableFlushEntries: 512,
			CompactionFanIn:      4,
			GCGraceSeqs:          grace,
		})
		for i := 0; i < benchRecords; i++ {
			s.Put([]byte(gdprbench.KeyFor(i)), []byte("payload"))
		}
		for i := 0; i < benchRecords/2; i++ {
			s.Delete([]byte(gdprbench.KeyFor(i)))
		}
		s.Compact()
		return s
	}
	for _, cfg := range []struct {
		name  string
		grace int64
	}{{"grace-1", 1}, {"grace-inf", 1 << 62}} {
		b.Run(cfg.name, func(b *testing.B) {
			s := build(cfg.grace)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				s.Scan(func(_, _ []byte) bool {
					n++
					return true
				})
			}
		})
	}
}

// BenchmarkAblationLoggerGrounding compares the per-operation cost of
// the three history groundings at the DB level (same profile except the
// logger).
func BenchmarkAblationLoggerGrounding(b *testing.B) {
	bases := map[string]datacase.Profile{
		"csv-logs":       datacase.PBase(),
		"encrypted-logs": datacase.PSYS(),
	}
	for name, p := range bases {
		b.Run(name, func(b *testing.B) {
			db, err := datacase.OpenProfile(p)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				rec := datacase.Record{
					Key:        gdprbench.KeyFor(i),
					Subject:    "person-1",
					Payload:    []byte("payload-observation"),
					Purposes:   []string{"billing", "analytics"},
					TTL:        1 << 40,
					Processors: []string{"processor-a"},
				}
				if err := db.Create(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.ReadData(compliance.EntityController, compliance.PurposeService,
					gdprbench.KeyFor(i%1000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPolicyGrounding compares adjudication through the
// three policy engines at the DB level on a keyed-read stream.
func BenchmarkAblationPolicyGrounding(b *testing.B) {
	for _, p := range datacase.Profiles() {
		b.Run(p.Name, func(b *testing.B) {
			db, err := datacase.OpenProfile(p)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 1000; i++ {
				rec := datacase.Record{
					Key:        gdprbench.KeyFor(i),
					Subject:    "person-1",
					Payload:    []byte("payload-observation"),
					Purposes:   []string{"billing", "analytics"},
					TTL:        1 << 40,
					Processors: []string{"processor-a"},
				}
				if err := db.Create(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.ReadData(compliance.EntityController, compliance.PurposeService,
					gdprbench.KeyFor(i%1000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
