// Package datacase is the public API of the Data-CASE reproduction: a
// formal framework for grounding data regulations (GDPR and kin) into
// checkable invariants and concrete system-actions, plus the complete
// experimental stack of the paper (EDBT 2024, arXiv:2308.07501).
//
// The model (data units, policies, actions, histories, invariants,
// groundings) lives in internal/core and is re-exported here; the
// substrates (a PostgreSQL-like heap engine, an LSM engine with
// tombstones, policy engines, audit loggers, crypto, provenance, the
// erasure engine) live under internal/ and are reachable through the
// compliance profiles and the experiment runners below.
//
// Quick start:
//
//	db, err := datacase.OpenProfile(datacase.PBase())
//	...
//	report, err := db.Audit(datacase.DefaultGDPRInvariants())
package datacase

import (
	"github.com/datacase/datacase/internal/api"
	"github.com/datacase/datacase/internal/audit"
	"github.com/datacase/datacase/internal/benchx"
	"github.com/datacase/datacase/internal/compliance"
	"github.com/datacase/datacase/internal/core"
	"github.com/datacase/datacase/internal/erasure"
	"github.com/datacase/datacase/internal/gdprbench"
	"github.com/datacase/datacase/internal/loadgen"
	"github.com/datacase/datacase/internal/policy"
	"github.com/datacase/datacase/internal/repl"
	"github.com/datacase/datacase/internal/storage"
	"github.com/datacase/datacase/internal/wal"
	"github.com/datacase/datacase/internal/wire"
	"github.com/datacase/datacase/internal/ycsb"
)

// ---- Formal model (Data-CASE concepts, §2 of the paper) ----

// Core model types.
type (
	// Time is the logical timestamp of the model.
	Time = core.Time
	// Clock issues monotone logical timestamps.
	Clock = core.Clock
	// Entity is a data subject, controller, processor or auditor.
	Entity = core.Entity
	// EntityID identifies an entity.
	EntityID = core.EntityID
	// EntityRole classifies entities.
	EntityRole = core.EntityRole
	// Purpose names a task data is processed for.
	Purpose = core.Purpose
	// PurposeSpec grounds a purpose into authorized actions.
	PurposeSpec = core.PurposeSpec
	// PurposeRegistry holds grounded purposes.
	PurposeRegistry = core.PurposeRegistry
	// Policy is ⟨purpose, entity, t_b, t_f⟩.
	Policy = core.Policy
	// PolicySet is the policy aspect of a data unit.
	PolicySet = core.PolicySet
	// DataUnit is X = (S, O, V, P).
	DataUnit = core.DataUnit
	// UnitID identifies a data unit.
	UnitID = core.UnitID
	// UnitKind is base/derived/metadata.
	UnitKind = core.UnitKind
	// UnitState is the snapshot X(t).
	UnitState = core.UnitState
	// Database is the model-level collection of units.
	Database = core.Database
	// Action is τ: an operation on data units.
	Action = core.Action
	// ActionKind classifies actions.
	ActionKind = core.ActionKind
	// HistoryTuple is (X, p, e, τ(X), t).
	HistoryTuple = core.HistoryTuple
	// History is the append-only action-history H.
	History = core.History
	// Invariant is a regulation requirement stated formally.
	Invariant = core.Invariant
	// InvariantSet is an ordered set of invariants.
	InvariantSet = core.InvariantSet
	// CheckContext is what invariants inspect.
	CheckContext = core.CheckContext
	// Violation is one invariant failure.
	Violation = core.Violation
	// Regulation is a taxonomy of articles (Figure 1).
	Regulation = core.Regulation
	// Article is one regulation article.
	Article = core.Article
	// RequirementCategory is a Figure-1 category.
	RequirementCategory = core.RequirementCategory
	// Concept is a groundable Data-CASE concept.
	Concept = core.Concept
	// Interpretation is one reading of a concept.
	Interpretation = core.Interpretation
	// SystemAction is a concrete engine operation.
	SystemAction = core.SystemAction
	// Grounding binds a concept to an interpretation and actions.
	Grounding = core.Grounding
	// GroundingRegistry records a deployment's groundings.
	GroundingRegistry = core.GroundingRegistry
	// ErasureInterpretation is one of the four erasure readings (§3.1).
	ErasureInterpretation = core.ErasureInterpretation
	// ErasureProperties are the IR/II/Inv characteristics.
	ErasureProperties = core.ErasureProperties
	// ErasureTimeline is the Figure-3 timeline.
	ErasureTimeline = core.ErasureTimeline
)

// Entity roles.
const (
	RoleDataSubject = core.RoleDataSubject
	RoleController  = core.RoleController
	RoleProcessor   = core.RoleProcessor
	RoleAuditor     = core.RoleAuditor
	RoleRegulator   = core.RoleRegulator
)

// Unit kinds.
const (
	KindBase     = core.KindBase
	KindDerived  = core.KindDerived
	KindMetadata = core.KindMetadata
)

// Action kinds.
const (
	ActionCreate        = core.ActionCreate
	ActionRead          = core.ActionRead
	ActionWrite         = core.ActionWrite
	ActionReadMetadata  = core.ActionReadMetadata
	ActionWriteMetadata = core.ActionWriteMetadata
	ActionStore         = core.ActionStore
	ActionShare         = core.ActionShare
	ActionDerive        = core.ActionDerive
	ActionDelete        = core.ActionDelete
	ActionErase         = core.ActionErase
	ActionRestore       = core.ActionRestore
	ActionConsent       = core.ActionConsent
	ActionSanitize      = core.ActionSanitize
)

// Erasure interpretations in increasing strictness (§3.1).
const (
	EraseReversiblyInaccessible = core.EraseReversiblyInaccessible
	EraseDelete                 = core.EraseDelete
	EraseStrongDelete           = core.EraseStrongDelete
	ErasePermanentDelete        = core.ErasePermanentDelete
)

// Regulation-defined purposes.
const (
	PurposeComplianceErase = core.PurposeComplianceErase
	PurposeRetention       = core.PurposeRetention
	PurposeAudit           = core.PurposeAudit
)

// Sentinel times.
const (
	TimeZero = core.TimeZero
	TimeMax  = core.TimeMax
)

// Model constructors.
var (
	// NewDatabase returns an empty model database.
	NewDatabase = core.NewDatabase
	// NewHistory returns an empty action-history.
	NewHistory = core.NewHistory
	// NewDataUnit constructs a base or metadata unit.
	NewDataUnit = core.NewDataUnit
	// NewDerivedUnit constructs a derived unit from sources.
	NewDerivedUnit = core.NewDerivedUnit
	// NewPolicySet returns an empty policy set.
	NewPolicySet = core.NewPolicySet
	// NewEntityRegistry returns an empty entity directory.
	NewEntityRegistry = core.NewEntityRegistry
	// NewPurposeRegistry returns the default grounded purposes.
	NewPurposeRegistry = core.NewPurposeRegistry
	// NewGroundingRegistry returns an empty grounding registry.
	NewGroundingRegistry = core.NewGroundingRegistry
	// DeclareErasureInterpretations declares the four §3.1 readings.
	DeclareErasureInterpretations = core.DeclareErasureInterpretations
	// GDPR returns the Figure-1 article taxonomy.
	GDPR = core.GDPR
	// CCPA, VDPA and PIPEDA are the other implemented taxonomies
	// (multinational scenarios, §4.3).
	CCPA   = core.CCPA
	VDPA   = core.VDPA
	PIPEDA = core.PIPEDA
	// Regulations returns every implemented taxonomy.
	Regulations = core.Regulations
	// NewBreachNotificationInvariant is G33/G34 (category VIII).
	NewBreachNotificationInvariant = core.NewBreachNotificationInvariant
	// Categories returns the Figure-1 categories.
	Categories = core.Categories
	// ErasureInterpretations returns the four readings in order.
	ErasureInterpretations = core.ErasureInterpretations
	// CharacteristicsOf returns Table 1's declared properties.
	CharacteristicsOf = core.CharacteristicsOf
	// PSQLSystemActions returns Table 1's system-action column.
	PSQLSystemActions = core.PSQLSystemActions
	// PolicyConsistent implements §2.1's lawfulness predicate.
	PolicyConsistent = core.PolicyConsistent
	// AuditUnit checks H(X) for policy consistency.
	AuditUnit = core.AuditUnit
	// AuditAll checks the whole history.
	AuditAll = core.AuditAll
	// DefaultGDPRInvariants returns G6, G17 and the Figure-1 set.
	DefaultGDPRInvariants = core.DefaultGDPRInvariants
	// NewInvariantSet builds an invariant set.
	NewInvariantSet = core.NewInvariantSet
	// NewLawfulProcessingInvariant is G6.
	NewLawfulProcessingInvariant = core.NewLawfulProcessingInvariant
	// NewErasureDeadlineInvariant is G17.
	NewErasureDeadlineInvariant = core.NewErasureDeadlineInvariant
)

// ---- Compliance profiles and the DB facade (§4.2) ----

type (
	// Profile is a grounded interpretation of GDPR compliance.
	Profile = compliance.Profile
	// DB is a deployment of a profile over the storage stack.
	DB = compliance.DB
	// ShardedDB is a subject-sharded deployment: N independent DB
	// shards routed by a hash of the data subject, with cross-shard
	// operations fanned out over a bounded worker pool.
	ShardedDB = compliance.ShardedDB
	// SweepReport is the outcome of a retention sweep.
	SweepReport = compliance.SweepReport
	// ComplianceReport is the outcome of an invariant audit.
	ComplianceReport = compliance.Report
	// SpaceReport is a Table-2 row.
	SpaceReport = compliance.SpaceReport
	// Metadata is the GDPR metadata block of a record.
	Metadata = compliance.Metadata
	// Record is a GDPRBench record.
	Record = gdprbench.Record
	// RecoveryStats describes a crash-recovery pass (records replayed,
	// checkpoint rows loaded, tail bytes discarded, wall time).
	RecoveryStats = compliance.RecoveryStats
)

// Deployment entities and purposes.
const (
	EntityController = compliance.EntityController
	EntityProcessor  = compliance.EntityProcessor
	EntitySubjectSvc = compliance.EntitySubjectSvc
	EntitySystem     = compliance.EntitySystem

	PurposeService       = compliance.PurposeService
	PurposeProcessing    = compliance.PurposeProcessing
	PurposeSubjectAccess = compliance.PurposeSubjectAccess
)

// Storage backends for Profile.Backend: the heap engine grounds
// deletion in DELETE+VACUUM mechanics; the LSM engine grounds it in
// tombstones with erase-aware compaction (§3.1's contrast, pluggable);
// the mmap engine grounds durability in the region itself — slotted
// pages plus an embedded redo log — so erasure is an in-place page
// scrub and checkpoints are page-table snapshots.
const (
	BackendHeap = compliance.BackendHeap
	BackendLSM  = compliance.BackendLSM
	BackendMmap = compliance.BackendMmap
)

// ---- Pluggable storage engines ----

type (
	// StorageEngine is the storage contract a compliance deployment's
	// data table runs on (heap or LSM).
	StorageEngine = storage.Engine
	// StorageStats is the backend-neutral work-counter snapshot.
	StorageStats = storage.Stats
	// StorageSpaceStats is the backend-neutral footprint report.
	StorageSpaceStats = storage.SpaceStats
	// Vacuumer is the heap's reclamation capability.
	Vacuumer = storage.Vacuumer
	// Purger is the LSM's erase-aware-compaction capability.
	Purger = storage.Purger
)

var (
	// NewHeapEngine builds a heap-backed storage engine.
	NewHeapEngine = storage.NewHeap
	// NewLSMEngine builds an LSM-backed storage engine.
	NewLSMEngine = storage.NewLSM
	// ErrKeyExists / ErrKeyNotFound are the engine-level sentinels.
	ErrKeyExists   = storage.ErrKeyExists
	ErrKeyNotFound = storage.ErrKeyNotFound
)

// Profile constructors and the DB opener.
var (
	// PBase is the least restrictive grounding (RBAC, CSV logs,
	// AES-256, DELETE+VACUUM).
	PBase = compliance.PBase
	// PGBench stores policies in a separate joined table, logs all
	// queries, encrypts at block level and deletes without vacuum.
	PGBench = compliance.PGBench
	// PSYS is the most restrictive grounding (Sieve-style FGAC,
	// AES-128, encrypted logs with policy snapshots, DELETE+VACUUM FULL
	// plus log erasure).
	PSYS = compliance.PSYS
	// Profiles returns the three paper profiles.
	Profiles = compliance.Profiles
	// OpenProfile builds a DB for a profile.
	OpenProfile = compliance.Open
	// OpenSharded builds a subject-sharded deployment of a profile.
	OpenSharded = compliance.OpenSharded
	// OpenShardedWorkers is OpenSharded with an explicit fan-out width.
	OpenShardedWorkers = compliance.OpenShardedWorkers
	// SubjectShard is the placement function of the sharded engine: the
	// home shard of a data subject.
	SubjectShard = compliance.SubjectShard
	// RecoverDB rebuilds a deployment from the durable image of its WAL
	// segment (crash recovery).
	RecoverDB = compliance.RecoverDB
	// RecoverSharded rebuilds a sharded deployment from per-shard WAL
	// images, replaying the shards in parallel.
	RecoverSharded = compliance.RecoverSharded
	// RecoverShardedWorkers is RecoverSharded with an explicit fan-out
	// width.
	RecoverShardedWorkers = compliance.RecoverShardedWorkers
	// RecoverDBWithRegion rebuilds an mmap-backed deployment from its
	// WAL image plus the crashed region bytes.
	RecoverDBWithRegion = compliance.RecoverDBWithRegion
	// RecoverShardedWithRegions is RecoverSharded for mmap-backed
	// deployments: per-shard WAL images plus per-shard region snapshots.
	RecoverShardedWithRegions = compliance.RecoverShardedWithRegions
	// ErrNotFound / ErrDenied / ErrExists are the DB's operation errors.
	ErrNotFound = compliance.ErrNotFound
	ErrDenied   = compliance.ErrDenied
	ErrExists   = compliance.ErrExists
)

// ---- Erasure engine (§3.1 grounding, Figure 3, Table 1) ----

type (
	// ErasureEngine executes grounded erasures.
	ErasureEngine = erasure.Engine
	// ShardedErasureEngine partitions erasure across per-shard engines.
	ShardedErasureEngine = erasure.ShardedEngine
	// Eraser is the erase-executing interface shared by both engines.
	Eraser = erasure.Eraser
	// ErasureTarget bundles the stores an erasure touches.
	ErasureTarget = erasure.Target
	// ErasureReport describes an executed erasure.
	ErasureReport = erasure.Report
	// ErasureScheduler drives Figure-3 timelines.
	ErasureScheduler = erasure.Scheduler
	// Table1Row is a measured Table-1 row.
	Table1Row = erasure.Table1Row
)

var (
	// NewErasureEngine validates a target and returns an engine.
	NewErasureEngine = erasure.NewEngine
	// NewShardedErasureEngine builds an engine over per-shard engines.
	NewShardedErasureEngine = erasure.NewShardedEngine
	// NewErasureScheduler binds a scheduler to an engine.
	NewErasureScheduler = erasure.NewScheduler
	// NewShardedErasureScheduler binds a scheduler to a sharded engine;
	// its Advance escalates per-shard batches in parallel.
	NewShardedErasureScheduler = erasure.NewShardedScheduler
	// NewShardedErasureSchedulerWorkers bounds the scheduler's fan-out.
	NewShardedErasureSchedulerWorkers = erasure.NewShardedSchedulerWorkers
)

// ---- Experiments (§4; Figures 3, 4(a)-(c); Tables 1-2) ----

type (
	// Scale sizes an experiment run.
	Scale = benchx.Scale
	// Figure is a rendered experiment result.
	Figure = benchx.Figure
	// RunResult is one workload execution result.
	RunResult = benchx.RunResult
	// EraseStrategy is a Figure-4(a) storage-level strategy.
	EraseStrategy = benchx.EraseStrategy
	// GDPRWorkload names a GDPRBench workload.
	GDPRWorkload = gdprbench.WorkloadName
	// YCSBWorkload names a YCSB workload.
	YCSBWorkload = ycsb.WorkloadName
)

// Workload names.
const (
	WCon  = gdprbench.Controller
	WPro  = gdprbench.Processor
	WCus  = gdprbench.Customer
	YCSBA = ycsb.WorkloadA
	YCSBB = ycsb.WorkloadB
	YCSBC = ycsb.WorkloadC
)

// Experiment entry points.
var (
	// DefaultScale is the quick-run configuration.
	DefaultScale = benchx.DefaultScale
	// PaperScale matches the paper's record/txn counts.
	PaperScale = benchx.PaperScale
	// Table1 regenerates Table 1 on a live system.
	Table1 = benchx.Table1
	// RenderTable1 renders Table 1.
	RenderTable1 = benchx.RenderTable1
	// Fig3Timeline walks a unit through the Figure-3 timeline.
	Fig3Timeline = benchx.Fig3Timeline
	// Fig4a regenerates Figure 4(a).
	Fig4a = benchx.Fig4a
	// Fig4b regenerates Figure 4(b).
	Fig4b = benchx.Fig4b
	// Fig4bWorkloads labels Figure 4(b)'s x-axis.
	Fig4bWorkloads = benchx.Fig4bWorkloads
	// Fig4c regenerates Figure 4(c).
	Fig4c = benchx.Fig4c
	// Table2 regenerates Table 2.
	Table2 = benchx.Table2
	// RenderFigure renders a figure as a fixed-width table.
	RenderFigure = benchx.Render
	// RenderFigureCSV renders a figure as CSV.
	RenderFigureCSV = benchx.RenderCSV
	// RunGDPRBench runs one profile × GDPRBench workload.
	RunGDPRBench = benchx.RunGDPRBench
	// RunYCSB runs one profile × YCSB workload.
	RunYCSB = benchx.RunYCSB
	// RunEraseStrategy runs one Figure-4(a) strategy.
	RunEraseStrategy = benchx.RunEraseStrategy
	// RunDeleteOnlyWorkload runs the paper's delete-only footnote case.
	RunDeleteOnlyWorkload = benchx.RunDeleteOnlyWorkload
	// EraseStrategies lists the Figure-4(a) strategies.
	EraseStrategies = benchx.EraseStrategies
	// RunShardedGDPRBench runs a workload against the sharded engine
	// with concurrent clients.
	RunShardedGDPRBench = benchx.RunShardedGDPRBench
	// RunShardedErasureBatch measures a batched right-to-be-forgotten
	// stream on the sharded engine.
	RunShardedErasureBatch = benchx.RunShardedErasureBatch
	// RunShardedAudit measures a global parallel compliance audit.
	RunShardedAudit = benchx.RunShardedAudit
	// ShardScaling sweeps shard counts (the scaling experiment).
	ShardScaling = benchx.ShardScaling
	// DefaultShardSweep is the 1/4/16 shard sweep.
	DefaultShardSweep = benchx.DefaultShardSweep
)

// Figure-4(a) strategies.
const (
	StratDelete     = benchx.StratDelete
	StratVacuum     = benchx.StratVacuum
	StratVacuumFull = benchx.StratVacuumFull
	StratTombstone  = benchx.StratTombstone
)

// ---- Closed-loop load driver (loadgen) and the group-commit WAL ----

type (
	// LoadgenConfig sizes one closed-loop loadgen run.
	LoadgenConfig = loadgen.Config
	// LoadgenResult is the machine-readable outcome of one run (the
	// BENCH_loadgen.json row schema).
	LoadgenResult = loadgen.Result
	// LoadgenReport is the BENCH_loadgen.json document envelope.
	LoadgenReport = loadgen.Report
	// LatencyHistogram is the driver's lock-free HDR-style histogram.
	LatencyHistogram = loadgen.Histogram
	// WALStats describes a log's commit work (appends vs syncs; fewer
	// syncs than appends means group commit amortized durability).
	WALStats = wal.Stats
)

var (
	// RunLoadgen executes one closed-loop measurement: P concurrent
	// clients replaying deterministic slices of a GDPRBench workload
	// against a subject-sharded deployment.
	RunLoadgen = loadgen.Run
	// LoadgenWALComparison pairs a group-commit run with a
	// per-append-locking run of the same configuration.
	LoadgenWALComparison = loadgen.WALComparison
	// WriteLoadgenJSON writes results as a BENCH_loadgen.json document.
	WriteLoadgenJSON = loadgen.WriteJSON
	// ReadLoadgenJSON parses and validates a BENCH_loadgen.json file.
	ReadLoadgenJSON = loadgen.ReadJSON
	// LoadgenSweep runs the driver at each client count.
	LoadgenSweep = benchx.LoadgenSweep
	// LoadgenFigure renders sweep results as a figure.
	LoadgenFigure = benchx.LoadgenFigure
	// DefaultClientSweep is the 1/4/16 client sweep.
	DefaultClientSweep = benchx.DefaultClientSweep
	// ClientSweepUpTo truncates the default sweep at a client count.
	ClientSweepUpTo = benchx.ClientSweepUpTo
	// ParseWorkload maps CLI spellings (wcon/wpro/wcus) to workloads.
	ParseWorkload = gdprbench.ParseWorkload
	// GDPRWorkloads lists the three GDPRBench workloads.
	GDPRWorkloads = gdprbench.Workloads
)

// ---- Crash-recovery experiment (-exp recovery) ----

type (
	// RecoveryResult is one BENCH_recovery.json row: recovery time and
	// replay work for one crashed-and-rebuilt deployment.
	RecoveryResult = benchx.RecoveryResult
	// RecoveryReport is the BENCH_recovery.json document envelope.
	RecoveryReport = benchx.RecoveryReport
)

// ---- Backend-comparison experiment (-exp backend) ----

type (
	// BackendReport is the BENCH_backend.json document envelope.
	BackendReport = benchx.BackendReport
	// BackendResult is one (backend, txns) sweep point.
	BackendResult = benchx.BackendResult
	// BackendEraseCheck is the per-backend erase-physicality evidence.
	BackendEraseCheck = benchx.BackendEraseCheck
)

var (
	// Backends lists the storage backends in figure order.
	Backends = benchx.Backends
	// RunBackendComparison runs the heap-vs-LSM experiment: the Figure
	// 4(a) series on the full compliance stack, Table 1 conformance on
	// both backends and the erase-physicality checks.
	RunBackendComparison = benchx.RunBackendComparison
	// RunBackendEraseCheck runs one backend's erase-physicality check.
	RunBackendEraseCheck = benchx.RunBackendEraseCheck
	// Table1On measures Table 1 on a specific storage backend.
	Table1On = benchx.Table1On
	// BackendFigure renders the sweep as a completion-time figure.
	BackendFigure = benchx.BackendFigure
	// WriteBackendJSON writes results as a BENCH_backend.json document.
	WriteBackendJSON = benchx.WriteBackendJSON
	// ReadBackendJSON parses and validates a BENCH_backend.json file.
	ReadBackendJSON = benchx.ReadBackendJSON
)

// ---- Read-path scaling experiment (-exp readpath) ----

type (
	// ReadPathConfig sizes one read-path measurement.
	ReadPathConfig = benchx.ReadPathConfig
	// ReadPathResult is one BENCH_readpath.json row.
	ReadPathResult = benchx.ReadPathResult
	// ReadPathReport is the BENCH_readpath.json document envelope.
	ReadPathReport = benchx.ReadPathReport
	// PolicyStats snapshots a policy engine's adjudication and
	// decision-cache work counters.
	PolicyStats = policy.Stats
	// PolicyDecision is one adjudication outcome, with its validity
	// bound and cache provenance.
	PolicyDecision = policy.Decision
)

var (
	// RunReadPath executes one read-path measurement: N closed-loop
	// readers replaying a deterministic pure-read stream against the
	// shared-lock read path (or the one-big-mutex baseline).
	RunReadPath = benchx.RunReadPath
	// ReadPathSweep runs the full matrix: backends x cache on/off x
	// reader counts, plus the exclusive-lock baseline.
	ReadPathSweep = benchx.ReadPathSweep
	// ReadPathFigure renders sweep results as a figure.
	ReadPathFigure = benchx.ReadPathFigure
	// WriteReadPathJSON writes results as a BENCH_readpath.json document.
	WriteReadPathJSON = benchx.WriteReadPathJSON
	// ReadReadPathJSON parses and validates a BENCH_readpath.json file,
	// enforcing the >= 3x read-scaling property.
	ReadReadPathJSON = benchx.ReadReadPathJSON
	// DefaultReaderSweep is the 1/4/16 reader sweep.
	DefaultReaderSweep = benchx.DefaultReaderSweep
	// NewCachedPolicyEngine wraps a policy engine with the
	// epoch-invalidated decision cache (profiles do this by default;
	// see Profile.NoDecisionCache).
	NewCachedPolicyEngine = policy.NewCached
	// NewAsyncAuditLogger wraps an audit logger with the bounded async
	// sink (profiles do this by default; see Profile.SyncAudit).
	NewAsyncAuditLogger = audit.NewAsync
)

var (
	// RunRecovery runs one crash-and-rebuild measurement.
	RunRecovery = benchx.RunRecovery
	// RecoverySweep pairs full-replay and checkpointed recoveries at
	// each WAL length.
	RecoverySweep = benchx.RecoverySweep
	// RecoveryFigure renders sweep results as time-vs-WAL-length.
	RecoveryFigure = benchx.RecoveryFigure
	// WriteRecoveryJSON writes results as a BENCH_recovery.json document.
	WriteRecoveryJSON = benchx.WriteRecoveryJSON
	// ReadRecoveryJSON parses and validates a BENCH_recovery.json file.
	ReadRecoveryJSON = benchx.ReadRecoveryJSON
)

// ---- Batched-ingest experiment (-exp ingest) ----

type (
	// IngestResult is one BENCH_ingest.json row: throughput and
	// checkpoint bytes for one (backend, batch size, checkpoint mode).
	IngestResult = benchx.IngestResult
	// IngestReport is the BENCH_ingest.json document envelope.
	IngestReport = benchx.IngestReport
)

var (
	// RunIngest ingests records through IngestBatch at one batch size.
	RunIngest = benchx.RunIngest
	// IngestSweep runs backend x batch size x checkpoint mode.
	IngestSweep = benchx.IngestSweep
	// IngestBatchSizes is the default 1/16/256 batch-size axis.
	IngestBatchSizes = benchx.IngestBatchSizes
	// IngestFigure renders sweep results as throughput-vs-batch-size.
	IngestFigure = benchx.IngestFigure
	// WriteIngestJSON writes results as a BENCH_ingest.json document.
	WriteIngestJSON = benchx.WriteIngestJSON
	// ReadIngestJSON parses and validates a BENCH_ingest.json file,
	// enforcing the batch-speedup and delta-ratio gates.
	ReadIngestJSON = benchx.ReadIngestJSON
	// ValidateIngestReport checks an ingest report's per-result and
	// cross-result gates.
	ValidateIngestReport = benchx.ValidateIngestReport
)

// ---- Durable-heap experiment (-exp durableheap) ----

type (
	// DurableHeapResult is one BENCH_durableheap.json row: ingest,
	// forced-checkpoint and recovery wall time for one backend.
	DurableHeapResult = benchx.DurableHeapResult
	// DurableHeapReport is the BENCH_durableheap.json document envelope.
	DurableHeapReport = benchx.DurableHeapReport
)

var (
	// RunDurableHeap runs one backend's ingest / checkpoint / recovery
	// measurement.
	RunDurableHeap = benchx.RunDurableHeap
	// DurableHeapSweep runs the heap/lsm/mmap axis at one scale.
	DurableHeapSweep = benchx.DurableHeapSweep
	// DurableHeapBackends is the experiment's three-backend axis.
	DurableHeapBackends = benchx.DurableHeapBackends
	// DurableHeapFigure renders the report as per-phase timing series.
	DurableHeapFigure = benchx.DurableHeapFigure
	// WriteDurableHeapJSON writes a BENCH_durableheap.json document.
	WriteDurableHeapJSON = benchx.WriteDurableHeapJSON
	// ReadDurableHeapJSON parses and validates a BENCH_durableheap.json
	// file, enforcing the recovery and checkpoint-cost floors.
	ReadDurableHeapJSON = benchx.ReadDurableHeapJSON
	// ValidateDurableHeapReport checks a durableheap report's per-result
	// invariants and cross-backend floors.
	ValidateDurableHeapReport = benchx.ValidateDurableHeapReport
)

// ---- Transport-neutral Client API and the wire serving stack ----

type (
	// Client is the transport-neutral operation surface of a Data-CASE
	// deployment: every compliance operation as an explicit
	// request/response pair under a context. A *LocalClient adapts an
	// in-process ShardedDB; a *RemoteClient speaks the wire protocol to
	// a datacase-server or datacase-gateway. Code written against
	// Client cannot tell the difference — the sentinels (ErrDenied,
	// ErrNotFound, ErrExists) survive the wire.
	Client = api.Client
	// LocalClient adapts a ShardedDB to the Client interface.
	LocalClient = api.Local
	// RemoteClient is the wire-protocol Client implementation.
	RemoteClient = wire.RemoteClient
	// Server hosts a ShardedDB behind the wire protocol.
	Server = wire.Server
	// Gateway routes wire requests to a fleet of servers by data
	// subject, with an epoch-versioned topology.
	Gateway = wire.Gateway
	// Router is the gateway's subject-sticky routing state.
	Router = wire.Router

	// Request/response pairs of the Client surface.
	CreateRequest         = api.CreateRequest
	CreateResponse        = api.CreateResponse
	ReadDataRequest       = api.ReadDataRequest
	ReadDataResponse      = api.ReadDataResponse
	UpdateDataRequest     = api.UpdateDataRequest
	UpdateDataResponse    = api.UpdateDataResponse
	DeleteDataRequest     = api.DeleteDataRequest
	DeleteDataResponse    = api.DeleteDataResponse
	ReadMetaRequest       = api.ReadMetaRequest
	ReadMetaResponse      = api.ReadMetaResponse
	UpdateMetaRequest     = api.UpdateMetaRequest
	UpdateMetaResponse    = api.UpdateMetaResponse
	ReadByMetaRequest     = api.ReadByMetaRequest
	ReadByMetaResponse    = api.ReadByMetaResponse
	SubjectAccessRequest  = api.SubjectAccessRequest
	SubjectAccessResponse = api.SubjectAccessResponse
	EraseSubjectRequest   = api.EraseSubjectRequest
	EraseSubjectResponse  = api.EraseSubjectResponse
	RevokeRequest         = api.RevokeRequest
	RevokeResponse        = api.RevokeResponse
	AuditRequest          = api.AuditRequest
	AuditResponse         = api.AuditResponse
)

var (
	// NewLocalClient adapts an in-process sharded deployment to the
	// Client interface.
	NewLocalClient = api.NewLocal
	// Dial connects a RemoteClient to a server or gateway address.
	Dial = wire.Dial
	// NewServer wraps a Client backend in a wire server.
	NewServer = wire.NewServer
	// NewGateway builds a subject-routing gateway over server addresses
	// at a topology epoch.
	NewGateway = wire.NewGateway
	// ErrUnavailable is returned for requests refused by a draining
	// server.
	ErrUnavailable = wire.ErrUnavailable
)

// ---- Network soak experiment (-exp network) ----

type (
	// NetworkConfig sizes one end-to-end network measurement.
	NetworkConfig = loadgen.NetworkConfig
	// NetworkResult is one BENCH_network.json row.
	NetworkResult = loadgen.NetworkResult
	// NetworkReport is the BENCH_network.json document envelope.
	NetworkReport = loadgen.NetworkReport
)

// NetworkSchemaVersion is the BENCH_network.json schema version.
const NetworkSchemaVersion = loadgen.NetworkSchemaVersion

var (
	// RunNetwork executes one closed-loop network soak: a fleet of wire
	// connections replaying a GDPRBench workload through a gateway.
	RunNetwork = loadgen.RunNetwork
	// NetworkSweep runs the soak at each connection count.
	NetworkSweep = loadgen.NetworkSweep
	// WriteNetworkJSON writes results as a BENCH_network.json document.
	WriteNetworkJSON = loadgen.WriteNetworkJSON
	// ReadNetworkJSON parses and validates a BENCH_network.json file.
	ReadNetworkJSON = loadgen.ReadNetworkJSON
)

// ---- Elastic resharding experiment (-exp reshard) ----

type (
	// ReshardConfig sizes one resharding measurement.
	ReshardConfig = benchx.ReshardConfig
	// ReshardResult is one BENCH_reshard.json row.
	ReshardResult = benchx.ReshardResult
	// ReshardReport is the BENCH_reshard.json document envelope.
	ReshardReport = benchx.ReshardReport
	// ShardRebalancer observes per-shard load and proposes live shard
	// splits and merges.
	ShardRebalancer = compliance.Rebalancer
	// ShardRebalancePlan is a rebalancing proposal.
	ShardRebalancePlan = compliance.Plan
)

var (
	// RunReshard executes one resharding measurement: a Zipfian
	// hot-subject workload pinned to one shard, measured before and
	// after a live rebalancer-driven split.
	RunReshard = benchx.RunReshard
	// WriteReshardJSON writes results as a BENCH_reshard.json document.
	WriteReshardJSON = benchx.WriteReshardJSON
	// ReadReshardJSON parses and validates a BENCH_reshard.json file,
	// enforcing the >= 1.5x post-split speedup floor.
	ReadReshardJSON = benchx.ReadReshardJSON
	// NewShardRebalancer builds a rebalancer over a sharded deployment.
	NewShardRebalancer = compliance.NewRebalancer
)

// ---- WAL-shipping replication (repl) ----

type (
	// ReplicationPrimary streams committed WAL batches to replicas and
	// turns RevokeConsent/EraseSubject into synchronous barriers: the
	// primary call does not return until every live replica acked (or
	// was fenced out).
	ReplicationPrimary = repl.Primary
	// ReplicationPrimaryConfig tunes the primary's barrier timeout,
	// batch sizing and poll interval.
	ReplicationPrimaryConfig = repl.PrimaryConfig
	// ReplicationReplica is a read replica: bootstrapped from the
	// primary's segment snapshots, kept current by per-shard pulls,
	// serving reads locally through a read-only Client.
	ReplicationReplica = repl.Replica
	// ReplicationReplicaConfig tunes a replica's identity and pacing.
	ReplicationReplicaConfig = repl.ReplicaConfig
	// ReplicationApplyStats reports one replicated-batch application.
	ReplicationApplyStats = compliance.ReplApplyStats
)

var (
	// NewReplicationPrimary wraps a sharded deployment with the
	// replication protocol (call Listen to serve replicas).
	NewReplicationPrimary = repl.NewPrimary
	// StartReplica bootstraps a read replica of the primary at an
	// address and starts its pull loops.
	StartReplica = repl.StartReplica
	// MostCaughtUp picks the failover candidate: the replica with the
	// highest applied position.
	MostCaughtUp = repl.MostCaughtUp
	// ReadOnlyClient wraps a Client so mutations fail with
	// ErrReadOnlyReplica while reads pass through.
	ReadOnlyClient = repl.ReadOnly
	// ErrReadOnlyReplica is returned for any mutation sent to a read
	// replica; it survives the wire.
	ErrReadOnlyReplica = api.ErrReadOnlyReplica
)

// ---- Replication experiment (-exp replication) ----

type (
	// ReplicationConfig sizes one replication measurement.
	ReplicationConfig = benchx.ReplicationConfig
	// ReplicationResult is one BENCH_replication.json row.
	ReplicationResult = benchx.ReplicationResult
	// ReplicationBenchReport is the BENCH_replication.json envelope.
	ReplicationBenchReport = benchx.ReplicationReport
)

var (
	// RunReplication executes one replication measurement: async-write
	// lag vs synchronous revocation-barrier latency, with post-return
	// visibility probes on every replica.
	RunReplication = benchx.RunReplication
	// WriteReplicationJSON writes results as BENCH_replication.json.
	WriteReplicationJSON = benchx.WriteReplicationJSON
	// ReadReplicationJSON parses and validates a BENCH_replication.json
	// file, enforcing the zero-violation barrier property.
	ReadReplicationJSON = benchx.ReadReplicationJSON
)
